//! The decoding loop.
//!
//! All loops here drive a [`DecodeSession`] rather than re-calling the
//! batch [`LanguageModel::logits`] per step: after the prompt prefill, each
//! generated token costs one incremental [`DecodeSession::logits`] call, so
//! substrates with native sessions decode in O(context) per step instead of
//! recomputing the whole context. Models without a native session fall back
//! to [`crate::session::FallbackSession`] and behave exactly as before.
//!
//! Two drivers share one step function: [`generate_session`] runs a decode
//! to completion in a loop, and [`GenerationStepper`] exposes the *same*
//! loop one token at a time so the serve crate's scheduler can interleave
//! many in-flight generations. Because both call `decode_step` with
//! identically-seeded RNG state, a stepped generation is byte-identical to
//! a sequential one by construction.

use crate::error::{LmError, MAX_TOKEN_BUDGET};
use crate::model::LanguageModel;
use crate::sampler::Sampler;
use crate::session::DecodeSession;
use crate::trace::{GenStep, GenerationTrace, TokenAlt};
use lmpeel_stats::{seeded_rng, SeedDomain};
use lmpeel_tokenizer::TokenId;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Generation parameters.
///
/// Construct via [`GenerateSpec::paper`] or [`GenerateSpec::builder`]; the
/// fields are private outside this crate so every externally-built spec has
/// passed [`GenerateSpecBuilder::build`] validation.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateSpec {
    /// Sampling policy.
    pub(crate) sampler: Sampler,
    /// Hard cap on generated tokens.
    pub(crate) max_tokens: usize,
    /// Tokens that end generation (sampled stop token is *not* included in
    /// the trace's steps).
    pub(crate) stop_tokens: Vec<TokenId>,
    /// Minimum probability for an alternative to be recorded in the trace
    /// (the "nonzero logit" cutoff of §III-C).
    pub(crate) trace_min_prob: f32,
    /// Sampling seed (the paper evaluates each prompt with three seeds).
    pub(crate) seed: u64,
}

impl GenerateSpec {
    /// Paper-style defaults with a given seed.
    pub fn paper(seed: u64) -> Self {
        Self {
            sampler: Sampler::paper(),
            max_tokens: 24,
            stop_tokens: vec![],
            trace_min_prob: 1e-3,
            seed,
        }
    }

    /// Start building a spec from neutral defaults (paper sampler, 24
    /// tokens, no stop tokens, 1e-3 trace floor, seed 0).
    pub fn builder() -> GenerateSpecBuilder {
        GenerateSpecBuilder {
            spec: GenerateSpec::paper(0),
        }
    }

    /// Re-open this spec as a builder to derive a modified copy.
    pub fn to_builder(&self) -> GenerateSpecBuilder {
        GenerateSpecBuilder { spec: self.clone() }
    }

    /// The sampling policy.
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// Hard cap on generated tokens.
    pub fn max_tokens(&self) -> usize {
        self.max_tokens
    }

    /// Tokens that end generation early.
    pub fn stop_tokens(&self) -> &[TokenId] {
        &self.stop_tokens
    }

    /// Minimum probability for a trace alternative to be recorded.
    pub fn trace_min_prob(&self) -> f32 {
        self.trace_min_prob
    }

    /// The sampling seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The validation every decode entry point applies, shared with
    /// [`GenerateSpecBuilder::build`] so in-crate literal construction is
    /// held to the same rules as the builder.
    pub(crate) fn validate(&self) -> Result<(), LmError> {
        if self.max_tokens == 0 {
            return Err(LmError::ZeroMaxTokens);
        }
        if self.max_tokens > MAX_TOKEN_BUDGET {
            return Err(LmError::BudgetExhausted {
                requested: self.max_tokens,
                budget: MAX_TOKEN_BUDGET,
            });
        }
        if !self.trace_min_prob.is_finite() || self.trace_min_prob < 0.0 {
            return Err(LmError::InvalidSpec(format!(
                "trace_min_prob must be finite and non-negative, got {}",
                self.trace_min_prob
            )));
        }
        let s = &self.sampler;
        if !s.temperature.is_finite() || s.temperature < 0.0 {
            return Err(LmError::InvalidSpec(format!(
                "temperature must be finite and non-negative, got {}",
                s.temperature
            )));
        }
        if !s.top_p.is_finite() || s.top_p <= 0.0 || s.top_p > 1.0 {
            return Err(LmError::InvalidSpec(format!(
                "top_p must be in (0, 1], got {}",
                s.top_p
            )));
        }
        Ok(())
    }
}

/// Builder for [`GenerateSpec`]; the only way to assemble a custom spec
/// outside this crate. [`GenerateSpecBuilder::build`] validates the result.
#[derive(Debug, Clone)]
pub struct GenerateSpecBuilder {
    spec: GenerateSpec,
}

impl GenerateSpecBuilder {
    /// Set the sampling policy.
    pub fn sampler(mut self, sampler: Sampler) -> Self {
        self.spec.sampler = sampler;
        self
    }

    /// Set the hard cap on generated tokens.
    pub fn max_tokens(mut self, max_tokens: usize) -> Self {
        self.spec.max_tokens = max_tokens;
        self
    }

    /// Replace the stop-token set.
    pub fn stop_tokens(mut self, stop_tokens: Vec<TokenId>) -> Self {
        self.spec.stop_tokens = stop_tokens;
        self
    }

    /// Add one stop token.
    pub fn stop_token(mut self, token: TokenId) -> Self {
        self.spec.stop_tokens.push(token);
        self
    }

    /// Set the trace-recording probability floor.
    pub fn trace_min_prob(mut self, p: f32) -> Self {
        self.spec.trace_min_prob = p;
        self
    }

    /// Set the sampling seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Validate and return the spec.
    pub fn build(self) -> Result<GenerateSpec, LmError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

/// One decode step over a session: record the raw distribution, sample,
/// honor stop tokens, append. Returns `Ok(Some(step))` when a token was
/// generated, `Ok(None)` when a stop token ended generation.
///
/// The trace records the *raw* softmax (temperature 1, no top-k/p) above
/// the `trace_min_prob` floor — the paper logs "all generated nonzero logit
/// values" before any sampling processors, and its central-decode analysis
/// (§IV-C) only comes out wrong-side-up if the rare off-magnitude
/// alternatives that sharpening and nucleus pruning would remove are kept
/// in the haystack.
fn decode_step(
    session: &mut dyn DecodeSession,
    spec: &GenerateSpec,
    rng: &mut ChaCha8Rng,
    logits_buf: &mut Vec<f32>,
) -> Result<Option<GenStep>, LmError> {
    session.logits_into(logits_buf);
    decode_step_from(session, logits_buf, spec, rng)
}

/// The sampling half of [`decode_step`], over logits the caller already
/// computed (`logits` must be the session's current next-token logits —
/// the batched decode path computes them for a whole group in one fused
/// forward pass). Splitting here keeps batched and single-lane decoding
/// byte-identical by construction: everything that consumes RNG state or
/// mutates the session lives in this one function.
fn decode_step_from(
    session: &mut dyn DecodeSession,
    logits: &[f32],
    spec: &GenerateSpec,
    rng: &mut ChaCha8Rng,
) -> Result<Option<GenStep>, LmError> {
    let trace_sampler = Sampler {
        temperature: 1.0,
        top_k: 0,
        top_p: 1.0,
    };
    let dist = trace_sampler.distribution(logits);
    if dist.is_empty() {
        return Err(LmError::EmptyVocab);
    }
    let (chosen, chosen_prob) = spec.sampler.sample(logits, rng);
    if spec.stop_tokens.contains(&chosen) {
        return Ok(None);
    }
    let alternatives: Vec<TokenAlt> = dist
        .into_iter()
        .filter(|&(_, p)| p >= spec.trace_min_prob)
        .map(|(id, prob)| TokenAlt { id, prob })
        .collect();
    session.append(chosen);
    Ok(Some(GenStep {
        chosen,
        chosen_prob,
        alternatives,
    }))
}

/// Run the decoding loop: sample up to `max_tokens` tokens, recording the
/// full feasible distribution at every step.
///
/// The model is taken as `&Arc<M>` because the session it spins up co-owns
/// the model ([`LanguageModel::session`] takes `Arc<Self>`).
pub fn generate<M: LanguageModel + ?Sized>(
    model: &Arc<M>,
    prompt: &[TokenId],
    spec: &GenerateSpec,
) -> Result<GenerationTrace, LmError> {
    let mut session = Arc::clone(model).session();
    session.extend(prompt);
    generate_session(&mut *session, spec)
}

/// The decoding loop over an already-prefilled [`DecodeSession`]: the
/// session's current contents are the prompt, and up to `max_tokens`
/// further tokens are sampled and appended. This is the entry point for
/// prompt-prefix sharing — prefill one session, then [`DecodeSession::fork`]
/// it per sampling seed and hand each fork here.
///
/// Trace semantics are identical to [`generate`]: the sampling RNG is keyed
/// by `(spec.seed, prompt length)`, every step records the raw softmax above
/// `trace_min_prob`, and a sampled stop token ends generation without being
/// recorded.
pub fn generate_session(
    session: &mut dyn DecodeSession,
    spec: &GenerateSpec,
) -> Result<GenerationTrace, LmError> {
    spec.validate()?;
    let prompt_len = session.len();
    let mut rng = seeded_rng(spec.seed, SeedDomain::Sampling(prompt_len as u64));
    let mut steps = Vec::new();
    let mut stopped_naturally = false;
    // One vocab-wide buffer for the whole generation.
    let mut logits_buf = Vec::new();

    for _ in 0..spec.max_tokens {
        match decode_step(session, spec, &mut rng, &mut logits_buf)? {
            Some(step) => steps.push(step),
            None => {
                stopped_naturally = true;
                break;
            }
        }
    }

    Ok(GenerationTrace {
        prompt_len,
        steps,
        stopped_naturally,
    })
}

/// The decoding loop as an explicit state machine: one sampled token per
/// [`GenerationStepper::step`] call.
///
/// This is what lets a scheduler interleave many generations — it can hold
/// a `Vec<GenerationStepper>`, advance each in-flight request one token per
/// scheduling round, admit new requests between rounds, and retire finished
/// ones immediately. Stepping shares `decode_step` and the RNG keying with
/// [`generate_session`], so for any interleaving the finished trace is
/// byte-identical to running `generate_session` on the same session and
/// spec.
pub struct GenerationStepper {
    session: Box<dyn DecodeSession>,
    spec: GenerateSpec,
    rng: ChaCha8Rng,
    prompt_len: usize,
    steps: Vec<GenStep>,
    stopped_naturally: bool,
    finished: bool,
    errored: bool,
    /// Vocab-wide logits buffer reused across steps (no per-token
    /// allocation on the single-lane path).
    logits_buf: Vec<f32>,
}

impl GenerationStepper {
    /// Wrap an already-prefilled session (its current contents are the
    /// prompt). Validates the spec up front so a malformed request fails at
    /// admission, not mid-decode.
    pub fn new(session: Box<dyn DecodeSession>, spec: GenerateSpec) -> Result<Self, LmError> {
        spec.validate()?;
        let prompt_len = session.len();
        let rng = seeded_rng(spec.seed, SeedDomain::Sampling(prompt_len as u64));
        Ok(Self {
            session,
            spec,
            rng,
            prompt_len,
            steps: Vec::new(),
            stopped_naturally: false,
            finished: false,
            errored: false,
            logits_buf: Vec::new(),
        })
    }

    /// Advance one token. Returns `Ok(true)` while the generation can still
    /// make progress, `Ok(false)` once it finished (stop token or budget).
    /// After an error or completion, further calls return `Ok(false)`.
    pub fn step(&mut self) -> Result<bool, LmError> {
        if self.finished {
            return Ok(false);
        }
        // Detach the buffer so the session borrow and the buffer borrow
        // don't overlap; reattached below, capacity intact.
        let mut buf = std::mem::take(&mut self.logits_buf);
        let result = decode_step(self.session.as_mut(), &self.spec, &mut self.rng, &mut buf);
        self.logits_buf = buf;
        self.settle(result)
    }

    /// Advance one token using logits the caller already computed for this
    /// session — the batched-decode entry point. `logits` **must** be
    /// bitwise what [`DecodeSession::logits`] would return right now (a
    /// fused [`crate::session::BatchDriver::logits_batch`] lane satisfies
    /// this by contract); everything downstream of the logits — trace
    /// recording, RNG consumption, stop handling, the append — is the very
    /// code [`step`] runs, so a precomputed step is byte-identical to a
    /// single-lane one.
    ///
    /// [`step`]: GenerationStepper::step
    pub fn step_precomputed(&mut self, logits: &[f32]) -> Result<bool, LmError> {
        if self.finished {
            return Ok(false);
        }
        let result = decode_step_from(self.session.as_mut(), logits, &self.spec, &mut self.rng);
        self.settle(result)
    }

    /// Shared bookkeeping tail of [`step`] / [`step_precomputed`].
    ///
    /// [`step`]: GenerationStepper::step
    /// [`step_precomputed`]: GenerationStepper::step_precomputed
    fn settle(&mut self, result: Result<Option<GenStep>, LmError>) -> Result<bool, LmError> {
        match result {
            Ok(Some(step)) => {
                self.steps.push(step);
                if self.steps.len() >= self.spec.max_tokens {
                    self.finished = true;
                }
                Ok(!self.finished)
            }
            Ok(None) => {
                self.stopped_naturally = true;
                self.finished = true;
                Ok(false)
            }
            Err(e) => {
                self.finished = true;
                self.errored = true;
                Err(e)
            }
        }
    }

    /// Read-only view of the underlying session, for batched-decode
    /// drivers that need the lane's state to compute its logits.
    pub fn session(&self) -> &dyn DecodeSession {
        self.session.as_ref()
    }

    /// The session's batch-group handle (see
    /// [`DecodeSession::batch_driver`]): `Some` when this lane's substrate
    /// can fuse it with same-key lanes into one forward pass.
    pub fn batch_driver(&self) -> Option<crate::session::BatchDriverRef<'_>> {
        self.session.batch_driver()
    }

    /// Re-arm a stepper frozen by a decode error so the next [`step`] call
    /// retries the failed token. Returns `true` iff the stepper was in the
    /// errored state (freshly constructed, finished, or aborted steppers
    /// are untouched and return `false`).
    ///
    /// The retried step is deterministic: `decode_step` reports an error
    /// *before* consuming RNG state or appending to the session, so a
    /// retry that succeeds produces the exact trace an error-free run
    /// would have — the basis of the serve layer's transient-error retry
    /// budget.
    ///
    /// [`step`]: GenerationStepper::step
    pub fn retry(&mut self) -> bool {
        if self.errored {
            self.errored = false;
            self.finished = false;
            true
        } else {
            false
        }
    }

    /// True once the generation cannot advance further.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Abandon the generation: mark it finished so further [`step`] calls
    /// are no-ops and [`into_trace`] returns the partial trace accumulated
    /// so far (with `stopped_naturally == false`). This is the cooperative
    /// cancellation point a scheduler uses when a request is cancelled or
    /// blows its deadline mid-decode — the session is simply never stepped
    /// again, so no model state is torn down mid-token.
    ///
    /// [`step`]: GenerationStepper::step
    /// [`into_trace`]: GenerationStepper::into_trace
    pub fn abort(&mut self) {
        self.finished = true;
    }

    /// Tokens this generation may still produce under the spec's
    /// `max_tokens` budget. Schedulers use this to bound how many more
    /// rounds a request can possibly occupy a batch slot.
    pub fn budget_remaining(&self) -> usize {
        if self.finished {
            0
        } else {
            self.spec.max_tokens.saturating_sub(self.steps.len())
        }
    }

    /// Tokens generated so far.
    pub fn tokens_generated(&self) -> usize {
        self.steps.len()
    }

    /// Prompt length captured at construction.
    pub fn prompt_len(&self) -> usize {
        self.prompt_len
    }

    /// Consume the stepper into the finished trace.
    pub fn into_trace(self) -> GenerationTrace {
        GenerationTrace {
            prompt_len: self.prompt_len,
            steps: self.steps,
            stopped_naturally: self.stopped_naturally,
        }
    }
}

/// Advance every stepper one token, fusing same-substrate lanes into one
/// batched forward pass where their sessions expose a
/// [`crate::session::BatchDriver`].
///
/// Byte-identity with sequential stepping holds by construction: sessions
/// are independent, so computing every fused lane's logits *before* any
/// lane appends cannot change what any lane sees; each lane then consumes
/// its logits through [`GenerationStepper::step_precomputed`] — the same
/// sampling/trace/append code `step` runs — in slice order. Lanes without
/// a driver (foreign sessions, [`crate::InductionLm`]'s sparse-index
/// sessions), singleton groups, and already-finished steppers take the
/// plain [`GenerationStepper::step`] path unchanged.
///
/// Returns one `step`-shaped result per stepper, in order. (The serve
/// scheduler re-implements this loop rather than calling it, because it
/// interleaves per-lane panic containment; this function is the
/// sequential, panic-transparent form and the anchor for the batched ≡
/// single-step equivalence suites.)
pub fn step_batch(steppers: &mut [&mut GenerationStepper]) -> Vec<Result<bool, LmError>> {
    // Group steppable lanes by driver key, first-seen order.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, s) in steppers.iter().enumerate() {
        if s.is_finished() {
            continue;
        }
        if let Some(h) = s.batch_driver() {
            match groups.iter_mut().find(|(k, _)| *k == h.key) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((h.key, vec![i])),
            }
        }
    }
    // One fused forward per group of two or more lanes.
    let mut fused: Vec<Option<Vec<f32>>> = steppers.iter().map(|_| None).collect();
    for (_, idxs) in groups.iter().filter(|(_, idxs)| idxs.len() >= 2) {
        let Some(first) = idxs.first() else { continue };
        let Some(handle) = steppers[*first].batch_driver() else {
            continue;
        };
        let lanes: Vec<&dyn DecodeSession> = idxs.iter().map(|&i| steppers[i].session()).collect();
        let mut out: Vec<Vec<f32>> = idxs.iter().map(|_| Vec::new()).collect();
        handle.driver.logits_batch(&lanes, &mut out);
        for (&i, buf) in idxs.iter().zip(out) {
            fused[i] = Some(buf);
        }
    }
    // Step in slice order; fused lanes consume their precomputed logits.
    steppers
        .iter_mut()
        .zip(fused)
        .map(|(s, buf)| match buf {
            Some(b) => s.step_precomputed(&b),
            None => s.step(),
        })
        .collect()
}

/// §V-D future-work decoding: "an LLM can be given a unique token to signal
/// to a supporting model that a number should be generated at a particular
/// position within its response. This mimics modern LLM tool usage patterns
/// by providing a hook for any number-generating process to transparently
/// assist the LLM."
///
/// This loop runs exactly like [`generate`], but whenever the context sits
/// at the start of a numeric value (detected via
/// [`crate::induction::prior::value_state`]), the `number_provider` is
/// consulted. If it supplies a value, the formatted digits are spliced into
/// the stream verbatim (each spliced step records a single-possibility
/// alternative, like a tool-call result) and the LM resumes for the
/// surrounding scaffold.
pub fn generate_with_number_hook<M, F>(
    model: &Arc<M>,
    prompt: &[TokenId],
    spec: &GenerateSpec,
    mut number_provider: F,
) -> Result<GenerationTrace, LmError>
where
    M: LanguageModel + ?Sized,
    F: FnMut(&[TokenId]) -> Option<String>,
{
    use crate::induction::prior::{value_state, ValueState};
    spec.validate()?;
    let mut rng = seeded_rng(spec.seed, SeedDomain::Sampling(prompt.len() as u64));
    let mut session = Arc::clone(model).session();
    session.extend(prompt);
    let mut steps = Vec::new();
    let mut stopped_naturally = false;
    let mut logits_buf = Vec::new();
    let tokenizer = model.tokenizer();

    while steps.len() < spec.max_tokens {
        // Numeric hook: at a value onset, let the supporting model fill in
        // the number.
        if value_state(session.tokens(), tokenizer) == Some(ValueState::Start) {
            if let Some(text) = number_provider(session.tokens()) {
                for id in tokenizer.encode(&text) {
                    if steps.len() >= spec.max_tokens {
                        break;
                    }
                    steps.push(GenStep {
                        chosen: id,
                        chosen_prob: 1.0,
                        alternatives: vec![TokenAlt { id, prob: 1.0 }],
                    });
                    session.append(id);
                }
                // The number is complete; only scaffold remains.
                continue;
            }
        }
        match decode_step(&mut *session, spec, &mut rng, &mut logits_buf)? {
            Some(step) => steps.push(step),
            None => {
                stopped_naturally = true;
                break;
            }
        }
    }
    Ok(GenerationTrace {
        prompt_len: prompt.len(),
        steps,
        stopped_naturally,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::CycleLm;
    use lmpeel_tokenizer::Tokenizer;

    fn cycle_model() -> Arc<CycleLm> {
        let t = Tokenizer::paper();
        let cycle = vec![t.encode("a")[0], t.encode("b")[0], t.encode("c")[0]];
        Arc::new(CycleLm {
            tokenizer: t,
            cycle,
        })
    }

    #[test]
    fn greedy_follows_the_cycle() {
        let m = cycle_model();
        let prompt = m.tokenizer.encode("a");
        let spec = GenerateSpec {
            sampler: Sampler::greedy(),
            max_tokens: 5,
            stop_tokens: vec![],
            trace_min_prob: 0.0,
            seed: 0,
        };
        let trace = generate(&m, &prompt, &spec).unwrap();
        assert_eq!(trace.decode(&m.tokenizer), "bcabc");
        assert_eq!(trace.prompt_len, 1);
        assert!(!trace.stopped_naturally);
    }

    #[test]
    fn stop_token_ends_generation_early() {
        let m = cycle_model();
        let prompt = m.tokenizer.encode("a");
        let stop = m.tokenizer.encode("c")[0];
        let spec = GenerateSpec {
            sampler: Sampler::greedy(),
            max_tokens: 10,
            stop_tokens: vec![stop],
            trace_min_prob: 0.0,
            seed: 0,
        };
        let trace = generate(&m, &prompt, &spec).unwrap();
        assert_eq!(trace.decode(&m.tokenizer), "b");
        assert!(trace.stopped_naturally);
    }

    #[test]
    fn same_seed_reproduces_identical_traces() {
        let m = cycle_model();
        let prompt = m.tokenizer.encode("ab");
        let spec = GenerateSpec::paper(7);
        let a = generate(&m, &prompt, &spec).unwrap();
        let b = generate(&m, &prompt, &spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_can_sample_differently_but_share_token_sets() {
        let m = cycle_model();
        let prompt = m.tokenizer.encode("a");
        let mk = |seed| GenerateSpec {
            sampler: Sampler {
                temperature: 2.0,
                top_k: 0,
                top_p: 1.0,
            },
            max_tokens: 6,
            stop_tokens: vec![],
            trace_min_prob: 1e-6,
            seed,
        };
        let a = generate(&m, &prompt, &mk(1)).unwrap();
        let b = generate(&m, &prompt, &mk(2)).unwrap();
        // The *feasible sets* at step 0 are identical (model is
        // deterministic); only the draw may differ.
        let ids = |t: &GenerationTrace| {
            t.steps[0]
                .alternatives
                .iter()
                .map(|x| x.id)
                .collect::<Vec<_>>()
        };
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn trace_threshold_prunes_rare_alternatives() {
        let m = cycle_model();
        let prompt = m.tokenizer.encode("a");
        let loose = GenerateSpec {
            sampler: Sampler {
                temperature: 1.0,
                top_k: 0,
                top_p: 1.0,
            },
            max_tokens: 1,
            stop_tokens: vec![],
            trace_min_prob: 0.0,
            seed: 3,
        };
        let tight = GenerateSpec {
            trace_min_prob: 0.5,
            ..loose.clone()
        };
        let full = generate(&m, &prompt, &loose).unwrap();
        let pruned = generate(&m, &prompt, &tight).unwrap();
        assert!(pruned.steps[0].num_possibilities() <= full.steps[0].num_possibilities());
        assert!(pruned.steps[0].num_possibilities() >= 1);
    }

    #[test]
    fn builder_round_trips_and_validates() {
        let spec = GenerateSpec::builder()
            .sampler(Sampler::greedy())
            .max_tokens(7)
            .stop_token(3)
            .trace_min_prob(0.25)
            .seed(42)
            .build()
            .unwrap();
        assert_eq!(spec.max_tokens(), 7);
        assert_eq!(spec.stop_tokens(), &[3]);
        assert_eq!(spec.seed(), 42);
        assert_eq!(spec.sampler(), &Sampler::greedy());
        assert_eq!(spec.trace_min_prob(), 0.25);

        // to_builder derives modified copies without mutating the source.
        let derived = spec.to_builder().seed(43).build().unwrap();
        assert_eq!(derived.seed(), 43);
        assert_eq!(derived.max_tokens(), spec.max_tokens());

        assert_eq!(
            GenerateSpec::builder().max_tokens(0).build().unwrap_err(),
            LmError::ZeroMaxTokens
        );
        assert_eq!(
            GenerateSpec::builder()
                .max_tokens(MAX_TOKEN_BUDGET + 1)
                .build()
                .unwrap_err(),
            LmError::BudgetExhausted {
                requested: MAX_TOKEN_BUDGET + 1,
                budget: MAX_TOKEN_BUDGET
            }
        );
        assert!(matches!(
            GenerateSpec::builder().trace_min_prob(f32::NAN).build(),
            Err(LmError::InvalidSpec(_))
        ));
        assert!(matches!(
            GenerateSpec::builder()
                .sampler(Sampler {
                    temperature: -1.0,
                    top_k: 0,
                    top_p: 1.0
                })
                .build(),
            Err(LmError::InvalidSpec(_))
        ));
        assert!(matches!(
            GenerateSpec::builder()
                .sampler(Sampler {
                    temperature: 1.0,
                    top_k: 0,
                    top_p: 0.0
                })
                .build(),
            Err(LmError::InvalidSpec(_))
        ));
    }

    #[test]
    fn invalid_specs_are_rejected_by_every_entry_point() {
        let m = cycle_model();
        let prompt = m.tokenizer.encode("a");
        let bad = GenerateSpec {
            max_tokens: 0,
            ..GenerateSpec::paper(0)
        };
        assert_eq!(
            generate(&m, &prompt, &bad).unwrap_err(),
            LmError::ZeroMaxTokens
        );
        let mut s = m.clone().session();
        s.extend(&prompt);
        assert_eq!(
            generate_session(&mut *s, &bad).unwrap_err(),
            LmError::ZeroMaxTokens
        );
        assert_eq!(
            GenerationStepper::new(m.clone().session(), bad)
                .err()
                .unwrap(),
            LmError::ZeroMaxTokens
        );
    }

    #[test]
    fn empty_vocab_is_an_error_not_a_panic() {
        struct Mute(Tokenizer);
        impl LanguageModel for Mute {
            fn tokenizer(&self) -> &Tokenizer {
                &self.0
            }
            fn logits(&self, _c: &[TokenId]) -> Vec<f32> {
                vec![f32::NEG_INFINITY; self.0.vocab().len()]
            }
            fn name(&self) -> String {
                "mute".into()
            }
        }
        let m = Arc::new(Mute(Tokenizer::paper()));
        let prompt = m.0.encode("a");
        let spec = GenerateSpec::paper(0);
        assert_eq!(
            generate(&m, &prompt, &spec).unwrap_err(),
            LmError::EmptyVocab
        );
    }

    #[test]
    fn stepper_matches_generate_session_exactly() {
        let m = cycle_model();
        let prompt = m.tokenizer.encode("ab");
        for seed in 0..4u64 {
            let spec = GenerateSpec::paper(seed);
            let mut s = m.clone().session();
            s.extend(&prompt);
            let sequential = generate_session(&mut *s, &spec).unwrap();

            let mut fresh = m.clone().session();
            fresh.extend(&prompt);
            let mut stepper = GenerationStepper::new(fresh, spec).unwrap();
            while stepper.step().unwrap() {}
            assert!(stepper.is_finished());
            assert_eq!(stepper.into_trace(), sequential);
        }
    }

    #[test]
    fn stepper_honors_stop_tokens_and_reports_progress() {
        let m = cycle_model();
        let prompt = m.tokenizer.encode("a");
        let stop = m.tokenizer.encode("c")[0];
        let spec = GenerateSpec {
            sampler: Sampler::greedy(),
            max_tokens: 10,
            stop_tokens: vec![stop],
            trace_min_prob: 0.0,
            seed: 0,
        };
        let mut s = m.clone().session();
        s.extend(&prompt);
        let mut stepper = GenerationStepper::new(s, spec).unwrap();
        assert_eq!(stepper.prompt_len(), 1);
        assert!(stepper.step().unwrap(), "first step generates 'b'");
        assert_eq!(stepper.tokens_generated(), 1);
        assert!(!stepper.step().unwrap(), "second step hits the stop token");
        assert!(stepper.is_finished());
        assert!(!stepper.step().unwrap(), "finished steppers stay finished");
        let trace = stepper.into_trace();
        assert_eq!(trace.decode(&m.tokenizer), "b");
        assert!(trace.stopped_naturally);
    }

    #[test]
    fn number_hook_splices_provider_values() {
        use lmpeel_tokenizer::Tokenizer;
        // A context that sits at a value onset: the hook must fire and the
        // provider's digits must appear verbatim with probability 1.
        struct Flat(Tokenizer);
        impl crate::model::LanguageModel for Flat {
            fn tokenizer(&self) -> &Tokenizer {
                &self.0
            }
            fn logits(&self, _c: &[lmpeel_tokenizer::TokenId]) -> Vec<f32> {
                let mut l = vec![f32::NEG_INFINITY; self.0.vocab().len()];
                l[self.0.vocab().token_id("\n").unwrap() as usize] = 0.0;
                l
            }
            fn name(&self) -> String {
                "flat".into()
            }
        }
        let m = Arc::new(Flat(Tokenizer::paper()));
        let prompt = m.0.encode("Performance: ");
        let spec = GenerateSpec {
            sampler: Sampler::greedy(),
            max_tokens: 10,
            stop_tokens: vec![m.0.vocab().token_id("\n").unwrap()],
            trace_min_prob: 0.0,
            seed: 0,
        };
        let mut calls = 0;
        let trace = generate_with_number_hook(&m, &prompt, &spec, |_ctx| {
            calls += 1;
            Some("0.0042000".to_string())
        })
        .unwrap();
        assert_eq!(calls, 1, "hook fires exactly once per value");
        let text = trace.decode(&m.0);
        assert!(text.starts_with("0.0042000"), "got {text:?}");
        // Spliced steps are certain.
        assert!(trace.steps[..5].iter().all(|s| s.chosen_prob == 1.0));
        assert!(trace.stopped_naturally);
    }

    #[test]
    fn number_hook_falls_back_to_the_lm_when_provider_declines() {
        let m = cycle_model();
        let prompt = m.tokenizer.encode("a");
        let spec = GenerateSpec {
            sampler: Sampler::greedy(),
            max_tokens: 3,
            stop_tokens: vec![],
            trace_min_prob: 0.0,
            seed: 0,
        };
        let plain = generate(&m, &prompt, &spec).unwrap();
        let hooked = generate_with_number_hook(&m, &prompt, &spec, |_| None).unwrap();
        assert_eq!(plain, hooked, "declining provider must be a no-op");
    }

    #[test]
    fn native_sessions_never_touch_the_batch_logits_path() {
        use crate::session::DecodeSession;
        use std::sync::atomic::{AtomicUsize, Ordering};

        // A model that counts batch `logits` calls and owns a native
        // session computing the same distribution without them. With such a
        // session, `generate` must perform zero full-context logit
        // recomputations — prefill included.
        struct CountingLm {
            tokenizer: Tokenizer,
            cycle: Vec<lmpeel_tokenizer::TokenId>,
            batch_calls: AtomicUsize,
        }

        impl CountingLm {
            fn next_logits(&self, last: Option<&lmpeel_tokenizer::TokenId>) -> Vec<f32> {
                let mut logits = vec![f32::NEG_INFINITY; self.tokenizer.vocab().len()];
                let next = match last {
                    Some(last) => {
                        let pos = self.cycle.iter().position(|t| t == last).unwrap_or(0);
                        self.cycle[(pos + 1) % self.cycle.len()]
                    }
                    None => self.cycle[0],
                };
                logits[next as usize] = 1.0;
                logits
            }
        }

        struct CountingSession {
            model: Arc<CountingLm>,
            tokens: Vec<lmpeel_tokenizer::TokenId>,
        }

        impl DecodeSession for CountingSession {
            fn tokens(&self) -> &[lmpeel_tokenizer::TokenId] {
                &self.tokens
            }
            fn append(&mut self, token: lmpeel_tokenizer::TokenId) {
                self.tokens.push(token);
            }
            fn logits(&self) -> Vec<f32> {
                self.model.next_logits(self.tokens.last())
            }
            fn fork(&self) -> Box<dyn DecodeSession> {
                Box::new(CountingSession {
                    model: Arc::clone(&self.model),
                    tokens: self.tokens.clone(),
                })
            }
        }

        impl LanguageModel for CountingLm {
            fn tokenizer(&self) -> &Tokenizer {
                &self.tokenizer
            }
            fn logits(&self, context: &[lmpeel_tokenizer::TokenId]) -> Vec<f32> {
                self.batch_calls.fetch_add(1, Ordering::SeqCst);
                self.next_logits(context.last())
            }
            fn name(&self) -> String {
                "counting-test-lm".into()
            }
            fn session(self: Arc<Self>) -> Box<dyn DecodeSession> {
                Box::new(CountingSession {
                    model: self,
                    tokens: Vec::new(),
                })
            }
        }

        let t = Tokenizer::paper();
        let cycle = vec![t.encode("a")[0], t.encode("b")[0], t.encode("c")[0]];
        let prompt = t.encode("abcab");
        let m = Arc::new(CountingLm {
            tokenizer: t,
            cycle,
            batch_calls: AtomicUsize::new(0),
        });
        let spec = GenerateSpec {
            sampler: Sampler::greedy(),
            max_tokens: 8,
            stop_tokens: vec![],
            trace_min_prob: 0.0,
            seed: 0,
        };
        let trace = generate(&m, &prompt, &spec).unwrap();
        assert_eq!(trace.decode(&m.tokenizer), "cabcabca");
        assert_eq!(
            m.batch_calls.load(Ordering::SeqCst),
            0,
            "a native session must fully bypass batch logits"
        );

        // Control: the same distribution through the default fallback
        // session pays one batch call per generated token.
        let mut s = crate::session::FallbackSession::new(Arc::clone(&m));
        s.extend(&prompt);
        let via_fallback = generate_session(&mut s, &spec).unwrap();
        assert_eq!(via_fallback.decode(&m.tokenizer), "cabcabca");
        assert_eq!(
            m.batch_calls.load(Ordering::SeqCst),
            spec.max_tokens,
            "one batch call per step"
        );
    }

    #[test]
    fn abort_freezes_the_stepper_and_keeps_the_partial_trace() {
        let m = cycle_model();
        let prompt = m.tokenizer.encode("a");
        let spec = GenerateSpec {
            sampler: Sampler::greedy(),
            max_tokens: 10,
            stop_tokens: vec![],
            trace_min_prob: 0.0,
            seed: 0,
        };
        let mut s = m.clone().session();
        s.extend(&prompt);
        let mut stepper = GenerationStepper::new(s, spec).unwrap();
        assert_eq!(stepper.budget_remaining(), 10);
        assert!(stepper.step().unwrap());
        assert_eq!(stepper.budget_remaining(), 9);
        stepper.abort();
        assert!(stepper.is_finished());
        assert_eq!(stepper.budget_remaining(), 0);
        assert!(!stepper.step().unwrap(), "aborted steppers never advance");
        let trace = stepper.into_trace();
        assert_eq!(trace.decode(&m.tokenizer), "b", "partial trace survives");
        assert!(!trace.stopped_naturally);
    }

    #[test]
    fn retry_after_transient_error_reproduces_the_healthy_trace() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        // All-(-inf) logits on exactly the `fail_at`-th logits call, the
        // cycle distribution otherwise: one transient EmptyVocab.
        struct Flaky {
            tokenizer: Tokenizer,
            cycle: Vec<TokenId>,
            calls: AtomicUsize,
            fail_at: usize,
        }
        impl LanguageModel for Flaky {
            fn tokenizer(&self) -> &Tokenizer {
                &self.tokenizer
            }
            fn logits(&self, context: &[TokenId]) -> Vec<f32> {
                let call = self.calls.fetch_add(1, Ordering::SeqCst);
                let mut logits = vec![f32::NEG_INFINITY; self.tokenizer.vocab().len()];
                if call != self.fail_at {
                    let next = match context.last() {
                        Some(last) => {
                            let pos = self.cycle.iter().position(|t| t == last).unwrap_or(0);
                            self.cycle[(pos + 1) % self.cycle.len()]
                        }
                        None => self.cycle[0],
                    };
                    logits[next as usize] = 1.0;
                }
                logits
            }
            fn name(&self) -> String {
                "flaky-test-lm".into()
            }
        }

        let t = Tokenizer::paper();
        let cycle = vec![t.encode("a")[0], t.encode("b")[0], t.encode("c")[0]];
        let prompt = t.encode("a");
        let spec = GenerateSpec {
            sampler: Sampler::greedy(),
            max_tokens: 5,
            stop_tokens: vec![],
            trace_min_prob: 0.0,
            seed: 0,
        };
        let healthy = Arc::new(Flaky {
            tokenizer: t.clone(),
            cycle: cycle.clone(),
            calls: AtomicUsize::new(0),
            fail_at: usize::MAX,
        });
        let want = generate(&healthy, &prompt, &spec).unwrap();

        let flaky = Arc::new(Flaky {
            tokenizer: t,
            cycle,
            calls: AtomicUsize::new(0),
            // Fail the third logits call (mid-generation).
            fail_at: 2,
        });
        let mut s = flaky.clone().session();
        s.extend(&prompt);
        let mut stepper = GenerationStepper::new(s, spec.clone()).unwrap();
        let mut errors = 0;
        loop {
            match stepper.step() {
                Ok(true) => {}
                Ok(false) => break,
                Err(LmError::EmptyVocab) => {
                    errors += 1;
                    assert!(stepper.is_finished(), "errors freeze the stepper");
                    assert!(stepper.retry(), "an errored stepper re-arms");
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(errors, 1);
        assert_eq!(
            stepper.into_trace(),
            want,
            "a retried run is byte-identical to an error-free one"
        );

        // retry() is a no-op on steppers that did not error.
        let mut s = cycle_model().session();
        s.extend(&prompt);
        let mut fresh = GenerationStepper::new(s, spec).unwrap();
        assert!(!fresh.retry(), "fresh steppers are not retryable");
        fresh.abort();
        assert!(!fresh.retry(), "aborted steppers are not retryable");
    }

    #[test]
    fn step_batch_without_drivers_matches_sequential_stepping() {
        // CycleLm sessions expose no BatchDriver, so step_batch must take
        // the loop-of-single-steps fallback and stay byte-identical.
        let m = cycle_model();
        let prompt = m.tokenizer.encode("ab");
        let mk = |seed| {
            let mut s = m.clone().session();
            s.extend(&prompt);
            GenerationStepper::new(s, GenerateSpec::paper(seed)).unwrap()
        };
        let mut a = mk(1);
        let mut b = mk(2);
        {
            let mut lanes = [&mut a, &mut b];
            while lanes.iter().any(|s| !s.is_finished()) {
                for r in step_batch(&mut lanes) {
                    r.unwrap();
                }
            }
        }
        for seed in [1u64, 2] {
            let mut solo = mk(seed);
            while solo.step().unwrap() {}
            let batched = if seed == 1 {
                std::mem::replace(&mut a, mk(0))
            } else {
                std::mem::replace(&mut b, mk(0))
            };
            assert_eq!(batched.into_trace(), solo.into_trace(), "seed {seed}");
        }
    }

    #[test]
    fn logits_into_default_matches_logits() {
        let m = cycle_model();
        let ctx = m.tokenizer.encode("abcab");
        let mut s = m.clone().session();
        s.extend(&ctx);
        let mut buf = vec![9.0; 3];
        s.logits_into(&mut buf);
        assert_eq!(buf, s.logits());
        assert!(s.as_any().is_none(), "fallback sessions are opaque");
        assert!(s.batch_driver().is_none(), "fallback sessions fuse nothing");
    }

    #[test]
    fn max_tokens_caps_length() {
        let m = cycle_model();
        let prompt = m.tokenizer.encode("a");
        let spec = GenerateSpec {
            max_tokens: 3,
            ..GenerateSpec::paper(1)
        };
        let trace = generate(&m, &prompt, &spec).unwrap();
        assert!(trace.steps.len() <= 3);
    }
}
