//! The language-model trait.

use crate::session::{DecodeSession, FallbackSession};
use lmpeel_tokenizer::{TokenId, Tokenizer};
use std::sync::Arc;

/// An autoregressive language model exposing raw next-token logits.
///
/// Implementations must be deterministic functions of `(model state,
/// context)`: the experiment driver relies on re-running a context to
/// reproduce identical logits (the paper's per-seed analyses re-decode the
/// same generation trace many ways). Any sampling randomness lives in
/// [`crate::sampler::Sampler`], not the model; any *seed-dependent logit
/// jitter* (reproducing the paper's Figure 4 observation that "different
/// seeds often produce identical token sets with slightly altered logit
/// probabilities") must be keyed by model-owned state fixed at
/// construction.
///
/// Models are `Send + Sync + 'static`: inference in this workspace is
/// served by a scheduler thread that holds models behind
/// `Arc<dyn LanguageModel>` and parks sessions in a prefix cache, so the
/// whole surface must be shareable across threads. Models are immutable
/// after construction (all known implementations are plain data), so this
/// costs nothing.
pub trait LanguageModel: Send + Sync + 'static {
    /// The tokenizer whose vocabulary the logits are over.
    fn tokenizer(&self) -> &Tokenizer;

    /// Full-vocabulary logits for the next token after `context`.
    ///
    /// The returned vector has exactly `vocab.len()` entries. Values are
    /// unnormalized log-probabilities; `f32::NEG_INFINITY` marks tokens the
    /// model cannot produce at all.
    fn logits(&self, context: &[TokenId]) -> Vec<f32>;

    /// Human-readable model name for reports.
    fn name(&self) -> String;

    /// Start an owned incremental [`DecodeSession`] over this model.
    ///
    /// Takes `self: Arc<Self>` so the session can co-own the model and be
    /// `Send + 'static` — free to cross threads, sit in a request queue, or
    /// outlive the caller (the `Arc` receiver keeps the method
    /// object-safe, so `Arc<dyn LanguageModel>` works too). The default is
    /// a [`FallbackSession`] that recomputes batch
    /// [`LanguageModel::logits`] over the accumulated context — correct for
    /// every model. Substrates with cacheable per-context state (the
    /// transformer's key/value rows, the induction surrogate's segmentation
    /// and match indices) override this to make each decode step O(context)
    /// instead of O(context²) or worse.
    fn session(self: Arc<Self>) -> Box<dyn DecodeSession> {
        Box::new(FallbackSession::new(self))
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A deterministic toy model for harness tests: always assigns logit
    /// `1.0` to the token after the context's last token in a fixed cycle,
    /// and `0.0` to two distractors.
    pub struct CycleLm {
        pub tokenizer: Tokenizer,
        pub cycle: Vec<TokenId>,
    }

    impl LanguageModel for CycleLm {
        fn tokenizer(&self) -> &Tokenizer {
            &self.tokenizer
        }

        fn logits(&self, context: &[TokenId]) -> Vec<f32> {
            let mut logits = vec![f32::NEG_INFINITY; self.tokenizer.vocab().len()];
            let next = match context.last() {
                Some(last) => {
                    let pos = self.cycle.iter().position(|t| t == last).unwrap_or(0);
                    self.cycle[(pos + 1) % self.cycle.len()]
                }
                None => self.cycle[0],
            };
            logits[next as usize] = 1.0;
            // Two low-probability distractors for sampling/trace tests.
            logits[self.cycle[0] as usize] = logits[self.cycle[0] as usize].max(-2.0);
            logits[self.cycle[self.cycle.len() - 1] as usize] =
                logits[self.cycle[self.cycle.len() - 1] as usize].max(-3.0);
            logits
        }

        fn name(&self) -> String {
            "cycle-test-lm".into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::CycleLm;
    use super::*;

    #[test]
    fn trait_objects_dispatch_sessions() {
        let t = Tokenizer::paper();
        let cycle = vec![t.encode("a")[0], t.encode("b")[0], t.encode("c")[0]];
        let m = Arc::new(CycleLm {
            tokenizer: t,
            cycle,
        });
        let as_dyn: Arc<dyn LanguageModel> = m.clone();
        assert_eq!(as_dyn.name(), "cycle-test-lm");
        let ctx = m.tokenizer().encode("a");
        assert_eq!(as_dyn.logits(&ctx), m.logits(&ctx));
        // `session()` is dispatchable through the trait object.
        let mut s = as_dyn.session();
        s.extend(&ctx);
        assert_eq!(s.logits(), m.logits(&ctx));
    }
}
