//! The language-model trait.

use crate::session::{DecodeSession, FallbackSession};
use lmpeel_tokenizer::{TokenId, Tokenizer};

/// An autoregressive language model exposing raw next-token logits.
///
/// Implementations must be deterministic functions of `(model state,
/// context)`: the experiment driver relies on re-running a context to
/// reproduce identical logits (the paper's per-seed analyses re-decode the
/// same generation trace many ways). Any sampling randomness lives in
/// [`crate::sampler::Sampler`], not the model; any *seed-dependent logit
/// jitter* (reproducing the paper's Figure 4 observation that "different
/// seeds often produce identical token sets with slightly altered logit
/// probabilities") must be keyed by model-owned state fixed at
/// construction.
pub trait LanguageModel {
    /// The tokenizer whose vocabulary the logits are over.
    fn tokenizer(&self) -> &Tokenizer;

    /// Full-vocabulary logits for the next token after `context`.
    ///
    /// The returned vector has exactly `vocab.len()` entries. Values are
    /// unnormalized log-probabilities; `f32::NEG_INFINITY` marks tokens the
    /// model cannot produce at all.
    fn logits(&self, context: &[TokenId]) -> Vec<f32>;

    /// Human-readable model name for reports.
    fn name(&self) -> String;

    /// Start an incremental [`DecodeSession`] over this model.
    ///
    /// The default is a [`FallbackSession`] that recomputes batch
    /// [`LanguageModel::logits`] over the accumulated context — correct for
    /// every model. Substrates with cacheable per-context state (the
    /// transformer's key/value rows, the induction surrogate's segmentation
    /// and match indices) override this to make each decode step O(context)
    /// instead of O(context²) or worse.
    fn session(&self) -> Box<dyn DecodeSession + '_> {
        Box::new(FallbackSession::new(self))
    }
}

/// Blanket impl so `&M` is itself a model (lets callers pass either owned
/// or borrowed models to the generation loop).
impl<M: LanguageModel + ?Sized> LanguageModel for &M {
    fn tokenizer(&self) -> &Tokenizer {
        (**self).tokenizer()
    }

    fn logits(&self, context: &[TokenId]) -> Vec<f32> {
        (**self).logits(context)
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn session(&self) -> Box<dyn DecodeSession + '_> {
        // Forward so a borrowed model still reaches the native session
        // (the default would wrap `&M` in a fresh fallback).
        (**self).session()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A deterministic toy model for harness tests: always assigns logit
    /// `1.0` to the token after the context's last token in a fixed cycle,
    /// and `0.0` to two distractors.
    pub struct CycleLm {
        pub tokenizer: Tokenizer,
        pub cycle: Vec<TokenId>,
    }

    impl LanguageModel for CycleLm {
        fn tokenizer(&self) -> &Tokenizer {
            &self.tokenizer
        }

        fn logits(&self, context: &[TokenId]) -> Vec<f32> {
            let mut logits = vec![f32::NEG_INFINITY; self.tokenizer.vocab().len()];
            let next = match context.last() {
                Some(last) => {
                    let pos = self.cycle.iter().position(|t| t == last).unwrap_or(0);
                    self.cycle[(pos + 1) % self.cycle.len()]
                }
                None => self.cycle[0],
            };
            logits[next as usize] = 1.0;
            // Two low-probability distractors for sampling/trace tests.
            logits[self.cycle[0] as usize] = logits[self.cycle[0] as usize].max(-2.0);
            logits[self.cycle[self.cycle.len() - 1] as usize] =
                logits[self.cycle[self.cycle.len() - 1] as usize].max(-3.0);
            logits
        }

        fn name(&self) -> String {
            "cycle-test-lm".into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::CycleLm;
    use super::*;

    #[test]
    fn reference_forwarding_works() {
        let t = Tokenizer::paper();
        let cycle = vec![t.encode("a")[0], t.encode("b")[0], t.encode("c")[0]];
        let m = CycleLm { tokenizer: t, cycle };
        let by_ref: &dyn LanguageModel = &m;
        assert_eq!(by_ref.name(), "cycle-test-lm");
        let ctx = m.tokenizer().encode("a");
        assert_eq!(by_ref.logits(&ctx), m.logits(&ctx));
        assert_eq!(by_ref.logits(&ctx).len(), m.tokenizer().vocab().len());
    }
}
