//! Context segmentation and example/query similarity.
//!
//! The `InductionLm` mirrors the attention pattern an instruction-tuned LLM
//! exhibits on LLAMBO-style prompts: attention concentrates on the
//! in-context example *blocks*, with weight modulated by how textually
//! similar each example's configuration line is to the query's. This module
//! finds those blocks — each starts at a `Hyperparameter` anchor token and
//! carries a configuration-token region and (for labelled examples) a value
//! region after `Performance:` — and scores block/query similarity by
//! Jaccard overlap of configuration tokens.

use lmpeel_tokenizer::{TokenId, Tokenizer};
use std::collections::BTreeSet;
use std::ops::Range;

/// One `Hyperparameter configuration: ... [Performance: ...]` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Token range of the whole block (anchor to next anchor / end).
    pub span: Range<usize>,
    /// Token range of the configuration description (anchor to the
    /// `Performance` token, or to the block end if none).
    pub config_span: Range<usize>,
    /// Token range of the runtime value (after `Performance: `), if the
    /// block is a labelled example.
    pub value_span: Option<Range<usize>>,
}

/// Segmentation of a prompt context into example blocks plus the trailing
/// query block.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextMap {
    /// All blocks in order of appearance; the last one is the query.
    pub blocks: Vec<Block>,
}

/// Token ids the segmenter anchors on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchorIds {
    /// `Hyperparameter` (line-initial form).
    pub hyper: TokenId,
    /// `Performance` (line-initial form).
    pub perf: TokenId,
    /// `\n`.
    pub newline: TokenId,
}

impl AnchorIds {
    /// Resolve the anchors against a tokenizer.
    ///
    /// # Panics
    /// Panics if the vocabulary lacks the anchor tokens (it never does for
    /// [`Tokenizer::paper`]).
    pub fn resolve(tokenizer: &Tokenizer) -> Self {
        let need = |s: &str| {
            tokenizer
                .vocab()
                .token_id(s)
                .unwrap_or_else(|| panic!("vocabulary lacks anchor token {s:?}"))
        };
        Self {
            hyper: need("Hyperparameter"),
            perf: need("Performance"),
            newline: need("\n"),
        }
    }
}

impl ContextMap {
    /// Segment a token context.
    ///
    /// Tokens before the first anchor (system prompt, problem description)
    /// belong to no block; contexts with no anchors yield an empty map.
    pub fn segment(context: &[TokenId], anchors: AnchorIds) -> Self {
        let starts: Vec<usize> = context
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t == anchors.hyper)
            .map(|(i, _)| i)
            .collect();
        let mut blocks = Vec::with_capacity(starts.len());
        for (bi, &start) in starts.iter().enumerate() {
            let end = starts.get(bi + 1).copied().unwrap_or(context.len());
            let perf_pos = context[start..end]
                .iter()
                .position(|&t| t == anchors.perf)
                .map(|p| p + start);
            let config_span = start..perf_pos.unwrap_or(end);
            let value_span = perf_pos.and_then(|p| {
                // value runs from after "Performance" + separator to the
                // next newline (or block end)
                let vstart = p + 2; // "Performance" + ": " (or ":" + " ")
                if vstart >= end {
                    return None;
                }
                let vend = context[vstart..end]
                    .iter()
                    .position(|&t| t == anchors.newline)
                    .map(|q| q + vstart)
                    .unwrap_or(end);
                (vend > vstart).then_some(vstart..vend)
            });
            blocks.push(Block {
                span: start..end,
                config_span,
                value_span,
            });
        }
        Self { blocks }
    }

    /// The trailing (query) block, if any.
    pub fn query(&self) -> Option<&Block> {
        self.blocks.last()
    }

    /// Index of the block containing token position `pos`, if any.
    pub fn block_of(&self, pos: usize) -> Option<usize> {
        // Blocks are sorted and disjoint; binary search by span start.
        if self.blocks.is_empty() {
            return None;
        }
        let i = self.blocks.partition_point(|b| b.span.start <= pos);
        if i == 0 {
            return None;
        }
        let b = &self.blocks[i - 1];
        b.span.contains(&pos).then_some(i - 1)
    }

    /// Jaccard similarity of each block's configuration-token set against
    /// the query block's, in block order. The query scores 1.0 against
    /// itself. Returns an empty vector when there is no query.
    pub fn config_similarities(&self, context: &[TokenId]) -> Vec<f64> {
        let Some(query) = self.query() else {
            return vec![];
        };
        let qset: BTreeSet<TokenId> = context[query.config_span.clone()].iter().copied().collect();
        self.blocks
            .iter()
            .map(|b| {
                let bset: BTreeSet<TokenId> =
                    context[b.config_span.clone()].iter().copied().collect();
                jaccard(&qset, &bset)
            })
            .collect()
    }
}

/// Jaccard index of two token sets; 1.0 when both are empty.
pub fn jaccard(a: &BTreeSet<TokenId>, b: &BTreeSet<TokenId>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok() -> Tokenizer {
        Tokenizer::paper()
    }

    fn example(tiles: (i64, i64, i64), value: &str) -> String {
        format!(
            "Hyperparameter configuration: size is SM, first_array_packed is True, \
             second_array_packed is False, interchange_first_two_loops is False, \
             outer_loop_tiling_factor is {}, middle_loop_tiling_factor is {}, \
             inner_loop_tiling_factor is {}\nPerformance: {value}\n",
            tiles.0, tiles.1, tiles.2
        )
    }

    fn prompt() -> String {
        let mut p = String::from("Here are the examples:\n");
        p.push_str(&example((80, 64, 100), "0.0022155"));
        p.push_str(&example((4, 8, 16), "0.0051230"));
        p.push_str("Please complete the following:\n");
        p.push_str(
            "Hyperparameter configuration: size is SM, first_array_packed is True, \
             second_array_packed is False, interchange_first_two_loops is False, \
             outer_loop_tiling_factor is 80, middle_loop_tiling_factor is 64, \
             inner_loop_tiling_factor is 128\nPerformance: ",
        );
        p
    }

    #[test]
    fn segmentation_finds_all_blocks() {
        let t = tok();
        let ctx = t.encode(&prompt());
        let map = ContextMap::segment(&ctx, AnchorIds::resolve(&t));
        assert_eq!(map.blocks.len(), 3);
        // The two examples have value spans; the query block's "value" after
        // "Performance: " is empty.
        assert!(map.blocks[0].value_span.is_some());
        assert!(map.blocks[1].value_span.is_some());
        assert!(map.blocks[2].value_span.is_none());
    }

    #[test]
    fn value_spans_decode_to_the_runtimes() {
        let t = tok();
        let ctx = t.encode(&prompt());
        let map = ContextMap::segment(&ctx, AnchorIds::resolve(&t));
        let v0 = map.blocks[0].value_span.clone().unwrap();
        let text = t.decode(&ctx[v0]);
        assert_eq!(text.trim(), "0.0022155");
        let v1 = map.blocks[1].value_span.clone().unwrap();
        assert_eq!(t.decode(&ctx[v1]).trim(), "0.0051230");
    }

    #[test]
    fn block_of_maps_positions() {
        let t = tok();
        let ctx = t.encode(&prompt());
        let map = ContextMap::segment(&ctx, AnchorIds::resolve(&t));
        assert_eq!(map.block_of(0), None, "preamble belongs to no block");
        let b1_start = map.blocks[1].span.start;
        assert_eq!(map.block_of(b1_start), Some(1));
        assert_eq!(map.block_of(b1_start - 1), Some(0));
        assert_eq!(map.block_of(ctx.len() - 1), Some(2));
    }

    #[test]
    fn similarity_ranks_closer_configs_higher() {
        let t = tok();
        let ctx = t.encode(&prompt());
        let map = ContextMap::segment(&ctx, AnchorIds::resolve(&t));
        let sims = map.config_similarities(&ctx);
        assert_eq!(sims.len(), 3);
        assert!((sims[2] - 1.0).abs() < 1e-12, "query matches itself");
        // Example 0 shares tiles 80/64 with the query; example 1 shares none.
        assert!(
            sims[0] > sims[1],
            "nearer example should score higher: {sims:?}"
        );
        assert!(sims.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn empty_context_yields_no_blocks() {
        let t = tok();
        let map = ContextMap::segment(&[], AnchorIds::resolve(&t));
        assert!(map.blocks.is_empty());
        assert_eq!(map.query(), None);
        assert!(map.config_similarities(&[]).is_empty());
    }

    #[test]
    fn jaccard_basics() {
        let a: BTreeSet<TokenId> = [1, 2, 3].into_iter().collect();
        let b: BTreeSet<TokenId> = [2, 3, 4].into_iter().collect();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&BTreeSet::new(), &BTreeSet::new()), 1.0);
        assert_eq!(jaccard(&a, &BTreeSet::new()), 0.0);
    }
}
