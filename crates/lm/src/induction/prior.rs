//! Numeric generation state and the "world-knowledge" magnitude prior.
//!
//! §IV-B: "a decimal digit sequence representing runtime requires a distinct
//! token for the '.' separator... the initial prefix digits have the most
//! significant influence on both its magnitude and all subsequent tokens".
//! The paper also observes that the model "appropriately reflects" that SM
//! runtimes are below one second — general pretraining knowledge about
//! plausible program runtimes, not something inferable from format alone.
//!
//! This module detects where in a decimal value the generation currently
//! is ([`ValueState`]) and supplies the pretrained-prior distribution over
//! the next token: a log-uniform belief over runtimes in
//! `[lo_seconds, hi_seconds]` projected onto the token alphabet, with the
//! paper's 7-decimal format carried by the in-context examples.

use lmpeel_tokenizer::{TokenId, Tokenizer};

/// Where inside a `Performance:` value the next token lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueState {
    /// Right after `Performance: ` — the next token is the integer part.
    Start,
    /// After `n` integer digits, before the decimal point.
    AfterInt {
        /// Number of integer digits emitted so far.
        int_digits: usize,
    },
    /// After the decimal point with `frac_digits` fractional digits so far.
    InFraction {
        /// Number of fractional digits emitted so far.
        frac_digits: usize,
    },
}

/// Detect the value state from the tail of a token context.
///
/// Walks back over numeric / `.` tokens; the run must be preceded by a
/// `Performance` token plus its `: `/`:` separator (an optional bare space
/// token is tolerated between separator and digits). Returns `None` when
/// the context is not completing a value.
pub fn value_state(context: &[TokenId], tokenizer: &Tokenizer) -> Option<ValueState> {
    let vocab = tokenizer.vocab();
    let s = |id: TokenId| vocab.token_str(id);

    // Trailing run of digits/periods.
    let mut i = context.len();
    while i > 0 {
        let t = s(context[i - 1]);
        if vocab.is_numeric(context[i - 1]) || t == "." {
            i -= 1;
        } else {
            break;
        }
    }
    let run = &context[i..];

    // What precedes the run must be the Performance separator.
    let mut j = i;
    if j > 0 && s(context[j - 1]) == " " {
        j -= 1;
    }
    if j == 0 {
        return None;
    }
    let sep = s(context[j - 1]);
    if sep != ": " && sep != ":" {
        return None;
    }
    if j < 2 || !s(context[j - 2]).ends_with("Performance") {
        return None;
    }

    // Classify the run.
    let mut int_digits = 0usize;
    let mut frac_digits = 0usize;
    let mut seen_dot = false;
    for &t in run {
        let st = s(t);
        if st == "." {
            if seen_dot {
                return None; // malformed; not a value we model
            }
            seen_dot = true;
        } else if seen_dot {
            frac_digits += st.len();
        } else {
            int_digits += st.len();
        }
    }
    Some(if run.is_empty() {
        ValueState::Start
    } else if !seen_dot {
        ValueState::AfterInt { int_digits }
    } else {
        ValueState::InFraction { frac_digits }
    })
}

/// The magnitude prior: parameters of the log-uniform runtime belief.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MagnitudePrior {
    /// Smallest plausible runtime in seconds.
    pub lo_seconds: f64,
    /// Largest plausible runtime in seconds.
    pub hi_seconds: f64,
    /// Decimal places the format carries (7 in the paper's prompts).
    pub target_decimals: usize,
}

impl Default for MagnitudePrior {
    fn default() -> Self {
        Self {
            lo_seconds: 1e-4,
            hi_seconds: 20.0,
            target_decimals: 7,
        }
    }
}

impl MagnitudePrior {
    /// Log-uniform probability that the runtime lies in `[a, b)`,
    /// restricted to the prior's support.
    fn log_mass(&self, a: f64, b: f64) -> f64 {
        let lo = a.max(self.lo_seconds);
        let hi = b.min(self.hi_seconds);
        if hi <= lo {
            return 0.0;
        }
        (hi / lo).ln() / (self.hi_seconds / self.lo_seconds).ln()
    }

    /// Prior weights over the next token for a value state, as sparse
    /// `(token, weight)` pairs summing to ~1. `newline`/`eos` receive the
    /// stopping mass when the format is complete.
    pub fn next_token_weights(
        &self,
        state: ValueState,
        tokenizer: &Tokenizer,
        newline: TokenId,
        eos: TokenId,
    ) -> Vec<(TokenId, f64)> {
        let vocab = tokenizer.vocab();
        let digit_id = |d: usize| vocab.token_id(&d.to_string()).expect("digit tokens exist");
        match state {
            ValueState::Start => {
                // First integer digit d means runtime in [d, d+1) seconds
                // (d = 0 covers everything below one second; d = 1 also
                // absorbs the >= 10s tail, whose decimal form starts with 1).
                let mut out: Vec<(TokenId, f64)> = (0..10)
                    .map(|d| {
                        let (a, b) = if d == 0 {
                            (self.lo_seconds, 1.0)
                        } else if d == 1 {
                            return (
                                digit_id(1),
                                self.log_mass(1.0, 2.0) + self.log_mass(10.0, self.hi_seconds),
                            );
                        } else {
                            (d as f64, d as f64 + 1.0)
                        };
                        (digit_id(d), self.log_mass(a, b))
                    })
                    .filter(|&(_, w)| w > 0.0)
                    .collect();
                let total: f64 = out.iter().map(|&(_, w)| w).sum();
                for p in &mut out {
                    p.1 /= total;
                }
                out
            }
            ValueState::AfterInt { int_digits } => {
                // Overwhelmingly the decimal point; a sliver of mass on a
                // further digit (runtimes >= 10s exist in the tail of the
                // prior).
                let more = if int_digits == 1 {
                    self.log_mass(10.0, self.hi_seconds)
                } else {
                    0.0
                };
                let mut out = vec![(vocab.token_id(".").expect("period token"), 1.0 - more)];
                if more > 0.0 {
                    // spread over plausible second digits uniformly
                    for d in 0..10 {
                        out.push((digit_id(d), more / 10.0));
                    }
                }
                out
            }
            ValueState::InFraction { frac_digits } => {
                let remaining = self.target_decimals.saturating_sub(frac_digits);
                match remaining {
                    // A chat model ends its turn after answering; a line
                    // break (continuing the transcript) is the rarer path.
                    0 => vec![(eos, 0.75), (newline, 0.25)],
                    1 | 2 => {
                        // Exactly-fitting digit groups, uniform: fraction
                        // digits of a log-uniform variable are ~uniform.
                        let ids = vocab.numeric_ids(remaining);
                        let w = 1.0 / ids.len() as f64;
                        ids.into_iter().map(|id| (id, w)).collect()
                    }
                    _ => {
                        // Prefer 3-digit groups (the Llama grouping), with
                        // small mass on shorter groups (early stop /
                        // format deviation within the number).
                        let mut out: Vec<(TokenId, f64)> = Vec::with_capacity(1110);
                        let three = vocab.numeric_ids(3);
                        let w3 = 0.94 / three.len() as f64;
                        out.extend(three.into_iter().map(|id| (id, w3)));
                        let two = vocab.numeric_ids(2);
                        let w2 = 0.04 / two.len() as f64;
                        out.extend(two.into_iter().map(|id| (id, w2)));
                        let one = vocab.numeric_ids(1);
                        let w1 = 0.02 / one.len() as f64;
                        out.extend(one.into_iter().map(|id| (id, w1)));
                        out
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmpeel_tokenizer::{Vocab, EOS as EOS_STR};

    fn tok() -> Tokenizer {
        Tokenizer::paper()
    }

    fn nl_eos(t: &Tokenizer) -> (TokenId, TokenId) {
        (
            t.vocab().token_id("\n").unwrap(),
            t.vocab().token_id(EOS_STR).unwrap(),
        )
    }

    #[test]
    fn state_detection_through_a_value() {
        let t = tok();
        let base = "Performance: ";
        assert_eq!(value_state(&t.encode(base), &t), Some(ValueState::Start));
        assert_eq!(
            value_state(&t.encode("Performance: 0"), &t),
            Some(ValueState::AfterInt { int_digits: 1 })
        );
        assert_eq!(
            value_state(&t.encode("Performance: 0."), &t),
            Some(ValueState::InFraction { frac_digits: 0 })
        );
        assert_eq!(
            value_state(&t.encode("Performance: 0.002"), &t),
            Some(ValueState::InFraction { frac_digits: 3 })
        );
        assert_eq!(
            value_state(&t.encode("Performance: 0.0022155"), &t),
            Some(ValueState::InFraction { frac_digits: 7 })
        );
    }

    #[test]
    fn non_value_contexts_yield_none() {
        let t = tok();
        assert_eq!(value_state(&t.encode("size is SM, tile is 80"), &t), None);
        assert_eq!(value_state(&t.encode("Performance was great"), &t), None);
        assert_eq!(value_state(&t.encode(""), &t), None);
        // double dot is malformed
        assert_eq!(value_state(&t.encode("Performance: 0.0.1"), &t), None);
    }

    #[test]
    fn bare_colon_separator_is_accepted() {
        let t = tok();
        // "Performance:" followed directly by generation (no trailing space
        // in the prompt): the separator tokenizes as ":" alone.
        let mut ctx = t.encode("Performance:");
        assert_eq!(value_state(&ctx, &t), Some(ValueState::Start));
        ctx.extend(t.encode("3"));
        assert_eq!(
            value_state(&ctx, &t),
            Some(ValueState::AfterInt { int_digits: 1 })
        );
    }

    #[test]
    fn start_prior_reflects_sub_second_dominance() {
        let t = tok();
        let (nl, eos) = nl_eos(&t);
        let prior = MagnitudePrior::default();
        let w = prior.next_token_weights(ValueState::Start, &t, nl, eos);
        let get = |d: &str| {
            w.iter()
                .find(|&&(id, _)| t.vocab().token_str(id) == d)
                .map(|&(_, p)| p)
                .unwrap_or(0.0)
        };
        assert!(get("0") > 0.5, "most mass on sub-second runtimes");
        assert!(
            get("1") > get("5"),
            "log-uniform favours small leading digits"
        );
        let total: f64 = w.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn after_int_prior_is_almost_surely_the_period() {
        let t = tok();
        let (nl, eos) = nl_eos(&t);
        let prior = MagnitudePrior::default();
        let w = prior.next_token_weights(ValueState::AfterInt { int_digits: 1 }, &t, nl, eos);
        let period = w
            .iter()
            .find(|&&(id, _)| t.vocab().token_str(id) == ".")
            .unwrap()
            .1;
        assert!(period > 0.9, "Table II: the 2nd token is always the period");
    }

    #[test]
    fn fraction_prior_spans_hundreds_of_tokens() {
        let t = tok();
        let (nl, eos) = nl_eos(&t);
        let prior = MagnitudePrior::default();
        let w = prior.next_token_weights(ValueState::InFraction { frac_digits: 0 }, &t, nl, eos);
        assert!(w.len() >= 1000, "3-digit groups dominate: {}", w.len());
        let total: f64 = w.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exhausted_format_stops() {
        let t = tok();
        let (nl, eos) = nl_eos(&t);
        let prior = MagnitudePrior::default();
        let w = prior.next_token_weights(ValueState::InFraction { frac_digits: 7 }, &t, nl, eos);
        assert_eq!(w.len(), 2);
        assert!(w[0] == (eos, 0.75) && w[1] == (nl, 0.25));
    }

    #[test]
    fn remaining_one_digit_uses_single_digit_tokens() {
        let t = tok();
        let (nl, eos) = nl_eos(&t);
        let prior = MagnitudePrior::default();
        let w = prior.next_token_weights(ValueState::InFraction { frac_digits: 6 }, &t, nl, eos);
        assert_eq!(w.len(), 10);
        for (id, _) in &w {
            assert_eq!(t.vocab().token_str(*id).len(), 1);
        }
    }

    #[test]
    fn log_mass_is_a_probability() {
        let p = MagnitudePrior::default();
        let whole = p.log_mass(p.lo_seconds, p.hi_seconds);
        assert!((whole - 1.0).abs() < 1e-12);
        assert_eq!(p.log_mass(30.0, 40.0), 0.0, "outside support");
        assert!(p.log_mass(0.001, 0.01) > p.log_mass(1.0, 2.0));
    }

    #[test]
    fn vocab_digit_tokens_exist_for_prior() {
        let v = Vocab::paper();
        for d in 0..10 {
            assert!(v.token_id(&d.to_string()).is_some());
        }
    }
}
