//! `InductionLm`: a mechanistic surrogate for an instruction-tuned LLM on
//! LLAMBO-style autotuning prompts.
//!
//! The paper's in-depth analysis concludes that "the model's output tends to
//! parrot traits taken from the prompt without insight into what traits
//! should be prioritized". Mechanistic-interpretability work attributes
//! exactly this in-context copying to *induction heads* — attention circuits
//! that find earlier occurrences of the current suffix and promote whatever
//! followed them. `InductionLm` implements that mechanism directly, plus the
//! secondary effects the paper documents, each tied to a paper observation:
//!
//! * **suffix-match copying** (`§IV-A`: "generated values strongly cluster
//!   around the most common ICL values... slightly over 10% of the
//!   generated values are directly copied"): candidates are tokens that
//!   followed earlier occurrences of the current context suffix, weighted
//!   exponentially in match length;
//! * **similarity-modulated attention** (`§IV-A`: the best R² of 0.4643
//!   shows the model is *weakly* better than parroting): each in-context
//!   example's votes are scaled by the Jaccard similarity between its
//!   configuration line and the query's, giving the surrogate a weak,
//!   attention-like sensitivity to the relevant traits;
//! * **numeric smearing** (`§IV-B`, Table II: hundreds of selectable tokens
//!   at value positions 3–4): within a decimal value the copy distribution
//!   is smeared over numerically nearby digit groups, reflecting an LLM's
//!   diffuse uncertainty inside numbers;
//! * **magnitude prior** (`§IV-A`: "all SM objective values are less than
//!   one, and the LLM appropriately reflects this"): a log-uniform
//!   world-knowledge belief over runtimes shapes the first digits;
//! * **format drift** (`§III-C`, `§V-B`: "we also observed many deviations
//!   from our prompt and example's imposed output format... especially with
//!   large amounts of in-context learning examples"): a small,
//!   example-count-dependent probability of leaving the numeric format;
//! * **seed-keyed logit jitter** (Figure 4: "different seeds often produce
//!   identical token sets with slightly altered logit probabilities"): a
//!   tiny deterministic perturbation keyed by the model's seed that changes
//!   probabilities but never the support.

pub mod blocks;
pub mod incremental;
pub mod prior;

use crate::model::LanguageModel;
use crate::session::DecodeSession;
use blocks::{AnchorIds, ContextMap};
use lmpeel_stats::rng::{hash_bytes, hash_to_unit};
use lmpeel_tokenizer::{TokenId, Tokenizer, EOS};
use prior::{MagnitudePrior, ValueState};
use std::collections::BTreeMap;

/// Tunable parameters of the surrogate. Defaults reproduce the paper's
/// qualitative behaviour; the experiment calibration tests in
/// `lmpeel-core` pin the quantitative bands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InductionConfig {
    /// Longest suffix match considered (tokens).
    pub max_match: usize,
    /// Shortest suffix match that contributes a vote.
    pub min_match: usize,
    /// Per-matched-token weight base (votes scale as `lambda^k`).
    pub lambda: f64,
    /// Sharpness of the similarity modulation, `exp(sharpness*(sim-1))`.
    pub sim_sharpness: f64,
    /// Vote weight for matches outside any example block.
    pub non_block_weight: f64,
    /// Discount on votes from within the query block itself (matches
    /// against the model's own just-generated text). Without it the
    /// surrogate falls into the degenerate repetition loops instruction
    /// tuning suppresses in real chat models.
    pub self_block_discount: f64,
    /// Saturation constant: copy weight is `total/(total+saturation)`.
    pub saturation: f64,
    /// Cap on the copy weight at the integer/first-digit positions.
    pub copy_cap_start: f64,
    /// Cap on the exact-copy weight inside the fraction.
    pub copy_cap_frac: f64,
    /// Weight of the numerically smeared copy component in the fraction.
    pub smear_weight: f64,
    /// Relative smearing length scale: the e-fold distance around a copy
    /// center `c` is `smear_tau_rel * c + smear_tau_min` digit-group units,
    /// so uncertainty is proportional to magnitude (a 10% wobble around
    /// `734`, a couple of counts around `002`).
    pub smear_tau_rel: f64,
    /// Minimum smearing length scale in digit-group units.
    pub smear_tau_min: f64,
    /// Baseline probability of leaving the output format.
    pub drift_base: f64,
    /// Additional drift per in-context example (saturates at 100 examples).
    pub drift_slope: f64,
    /// Probability that a *prompt* is "confusing" at 100 ICL examples
    /// (ramping from zero below ~20 examples). The paper observed "many
    /// deviations from our prompt and example's imposed output format...
    /// especially with large amounts of in-context learning examples" —
    /// in real chat models this failure is largely per-prompt, not
    /// per-token: a given long prompt either derails the model or not.
    pub confusion_at_100: f64,
    /// Drift mass given a confusing prompt (dominates the value onset).
    pub drift_confused: f64,
    /// Uniform background mass over non-special tokens.
    pub background: f64,
    /// Seed-keyed logit jitter amplitude.
    pub jitter_eps: f32,
    /// World-knowledge magnitude prior.
    pub prior: MagnitudePrior,
}

impl Default for InductionConfig {
    fn default() -> Self {
        Self {
            max_match: 12,
            min_match: 2,
            lambda: 2.2,
            sim_sharpness: 30.0,
            non_block_weight: 0.3,
            self_block_discount: 0.15,
            saturation: 1.0,
            copy_cap_start: 0.93,
            copy_cap_frac: 0.09,
            smear_weight: 0.72,
            smear_tau_rel: 0.07,
            smear_tau_min: 1.2,
            drift_base: 0.004,
            drift_slope: 0.05,
            confusion_at_100: 0.18,
            drift_confused: 0.80,
            background: 2.0e-4,
            jitter_eps: 0.02,
            prior: MagnitudePrior {
                lo_seconds: 1e-4,
                hi_seconds: 10.0,
                target_decimals: 7,
            },
        }
    }
}

impl InductionConfig {
    /// Ablation: disable the similarity-modulated attention (every example
    /// block votes at full strength). Tests the paper's implied mechanism
    /// behind the occasional positive R²: without similarity weighting the
    /// surrogate is a pure parrot of the ICL distribution.
    pub fn without_similarity(self) -> Self {
        Self {
            sim_sharpness: 0.0,
            ..self
        }
    }

    /// Ablation: disable the world-knowledge magnitude prior (value tokens
    /// come from copying and smearing alone). Tests the "all SM objective
    /// values are less than one, and the LLM appropriately reflects this"
    /// behaviour: with no prior and no examples the model has no idea of
    /// plausible magnitudes.
    pub fn without_prior(self) -> Self {
        Self {
            copy_cap_start: 0.999,
            copy_cap_frac: 0.95,
            smear_weight: 0.049,
            ..self
        }
    }

    /// Ablation: disable numeric smearing (fraction digits are either exact
    /// copies or prior draws). Tests the interpolation behaviour behind the
    /// Figure 3 clustering.
    pub fn without_smear(self) -> Self {
        Self {
            smear_weight: 0.0,
            ..self
        }
    }

    /// Ablation: disable format drift (the model never leaves the numeric
    /// format, regardless of context length).
    pub fn without_drift(self) -> Self {
        Self {
            drift_base: 0.0,
            drift_slope: 0.0,
            ..self
        }
    }

    /// Ablation: disable the seed-keyed logit jitter (all seeds produce
    /// bit-identical logits; only sampling differs).
    pub fn without_jitter(self) -> Self {
        Self {
            jitter_eps: 0.0,
            ..self
        }
    }
}

/// The surrogate language model. See the module docs for the mechanism.
#[derive(Debug, Clone)]
pub struct InductionLm {
    tokenizer: Tokenizer,
    cfg: InductionConfig,
    seed: u64,
    anchors: AnchorIds,
    newline: TokenId,
    eos: TokenId,
    drift_ids: Vec<(TokenId, f64)>,
    /// `(token, numeric value)` for every 3-digit token, for smearing.
    three_digit: Vec<(TokenId, u32)>,
    num_non_special: usize,
}

impl InductionLm {
    /// Build over a tokenizer with explicit parameters and a model seed
    /// (the seed only perturbs logit magnitudes, never the support).
    pub fn new(tokenizer: Tokenizer, cfg: InductionConfig, seed: u64) -> Self {
        let anchors = AnchorIds::resolve(&tokenizer);
        let vocab = tokenizer.vocab();
        let newline = vocab.token_id("\n").expect("newline token");
        let eos = vocab.token_id(EOS).expect("EOS token");
        // Weighted drift targets: restarting the example scaffold (the most
        // common real-LLM failure on these prompts — it just keeps listing
        // examples) dominates; prose lead-ins are rarer.
        let drift_ids = [
            ("Hyperparameter", 0.7),
            (" The", 0.1),
            (" Please", 0.1),
            (" Here", 0.1),
        ]
        .iter()
        .filter_map(|&(s, w)| vocab.token_id(s).map(|id| (id, w)))
        .collect();
        let three_digit = vocab
            .numeric_ids(3)
            .into_iter()
            .map(|id| {
                (
                    id,
                    vocab.token_str(id).parse::<u32>().expect("3-digit token"),
                )
            })
            .collect();
        let num_non_special = vocab.len() - vocab.num_specials();
        Self {
            tokenizer,
            cfg,
            seed,
            anchors,
            newline,
            eos,
            drift_ids,
            three_digit,
            num_non_special,
        }
    }

    /// Paper-calibrated surrogate with a given seed.
    pub fn paper(seed: u64) -> Self {
        Self::new(Tokenizer::paper(), InductionConfig::default(), seed)
    }

    /// The model seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The surrogate's tuning parameters.
    pub fn config(&self) -> &InductionConfig {
        &self.cfg
    }

    /// The segmentation anchor ids (shared with the incremental session).
    pub(crate) fn anchor_ids(&self) -> AnchorIds {
        self.anchors
    }

    /// Suffix-match votes: for every position whose preceding tokens match
    /// the context's trailing tokens for `k >= min_match`, the token at that
    /// position receives weight `lambda^k * block_weight`.
    /// Returns the similarity-weighted vote distribution plus the
    /// *unweighted* total match strength. The distribution decides *what*
    /// gets copied (similar examples count more); the unweighted total
    /// decides *how strongly* the model copies at all — otherwise a sharper
    /// similarity focus would also (wrongly) weaken format anchoring.
    fn induction_votes(
        &self,
        context: &[TokenId],
        map: &ContextMap,
        sims: &[f64],
    ) -> (BTreeMap<TokenId, f64>, f64) {
        let t_end = context.len();
        let mut votes: BTreeMap<TokenId, f64> = BTreeMap::new();
        let mut strength = 0.0f64;
        if t_end < self.cfg.min_match + 1 {
            return (votes, strength);
        }
        let query_block = map.blocks.len().checked_sub(1);
        // Normalize similarities against the best example block, so the
        // most similar example always votes at full strength and the
        // sharpness only controls how quickly *less* similar examples fade.
        let best_sim = sims
            .iter()
            .take(sims.len().saturating_sub(1))
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let block_weight = |pos: usize| -> f64 {
            match map.block_of(pos) {
                Some(b) if Some(b) == query_block => self.cfg.self_block_discount,
                Some(b) if best_sim.is_finite() => {
                    (self.cfg.sim_sharpness * (sims[b] - best_sim)).exp()
                }
                Some(_) => 1.0,
                None => self.cfg.non_block_weight,
            }
        };
        let mut short_votes: BTreeMap<TokenId, f64> = BTreeMap::new();
        let mut short_strength = 0.0f64;
        for t in 1..t_end {
            // Match context[t-k..t] against context[t_end-k..t_end].
            let mut k = 0usize;
            while k < self.cfg.max_match && k < t && k < t_end {
                if context[t - 1 - k] != context[t_end - 1 - k] {
                    break;
                }
                k += 1;
            }
            if k >= self.cfg.min_match {
                let base = self.cfg.lambda.powi(k as i32);
                *votes.entry(context[t]).or_insert(0.0) += base * block_weight(t);
                strength += base;
            } else if k >= 1 {
                let base = self.cfg.lambda;
                *short_votes.entry(context[t]).or_insert(0.0) += base * block_weight(t);
                short_strength += base;
            }
        }
        if votes.is_empty() {
            // Attention falls back to single-token matches only when no
            // longer match exists anywhere — this is what lets a derailed
            // response find its way back onto the scaffold.
            return (short_votes, short_strength);
        }
        (votes, strength)
    }

    /// Numeric smearing of fraction votes over nearby 3-digit groups.
    fn smear(&self, votes: &BTreeMap<TokenId, f64>) -> Vec<(TokenId, f64)> {
        let centers: Vec<(u32, f64)> = votes
            .iter()
            .filter_map(|(&id, &w)| {
                self.three_digit
                    .iter()
                    .find(|&&(tid, _)| tid == id)
                    .map(|&(_, v)| (v, w))
            })
            .collect();
        if centers.is_empty() {
            return vec![];
        }
        let mut out = Vec::with_capacity(self.three_digit.len());
        let mut total = 0.0;
        for &(id, v) in &self.three_digit {
            let mut m = 0.0;
            for &(c, w) in &centers {
                let d = (v as f64 - c as f64).abs();
                let tau = self.cfg.smear_tau_rel * c as f64 + self.cfg.smear_tau_min;
                m += w * (-d / tau).exp();
            }
            total += m;
            out.push((id, m));
        }
        if total > 0.0 {
            for p in &mut out {
                p.1 /= total;
            }
        }
        out
    }

    /// Prompt-stable uniform draw in [0,1): hashes the tokens leading up to
    /// `end` (the query anchor, so the hash covers the prompt's examples
    /// and stays constant throughout one generation) — NOT the model seed,
    /// so all three sampling seeds agree on whether a prompt is confusing,
    /// as they did in the paper's manual inspection.
    fn prompt_hash_unit(&self, context: &[TokenId], end: usize, salt: u64) -> f64 {
        let end = end.min(context.len());
        let start = end.saturating_sub(64);
        let mut bytes = Vec::with_capacity((end - start) * 4 + 9);
        for &t in &context[start..end] {
            bytes.extend_from_slice(&t.to_le_bytes());
        }
        bytes.extend_from_slice(&salt.to_le_bytes());
        bytes.push(0xDF);
        hash_to_unit(hash_bytes(&bytes))
    }

    fn add_weighted(p: &mut [f64], pairs: &[(TokenId, f64)], scale: f64) {
        for &(id, w) in pairs {
            p[id as usize] += scale * w;
        }
    }

    fn normalized(votes: &BTreeMap<TokenId, f64>) -> Vec<(TokenId, f64)> {
        let total: f64 = votes.values().sum();
        if total <= 0.0 {
            return vec![];
        }
        votes.iter().map(|(&id, &w)| (id, w / total)).collect()
    }
}

impl LanguageModel for InductionLm {
    fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    fn logits(&self, context: &[TokenId]) -> Vec<f32> {
        let map = ContextMap::segment(context, self.anchors);
        let sims = map.config_similarities(context);
        let (votes, strength) = self.induction_votes(context, &map, &sims);
        let query_start = map.blocks.last().map(|b| b.span.start);
        self.finish_logits(
            context,
            map.blocks.len(),
            query_start,
            &votes,
            strength,
            self.seed,
        )
    }

    fn name(&self) -> String {
        format!("induction-lm(seed={})", self.seed)
    }

    fn session(self: std::sync::Arc<Self>) -> Box<dyn DecodeSession> {
        Box::new(incremental::InductionLmSession::new(self))
    }
}

impl InductionLm {
    /// Turn a vote distribution plus context geometry into logits: the
    /// shared tail of the batch [`LanguageModel::logits`] path and the
    /// incremental [`incremental::InductionLmSession`] path. `seed` keys
    /// only the logit jitter (sessions may re-key it; the batch path passes
    /// the model's own seed).
    fn finish_logits(
        &self,
        context: &[TokenId],
        n_blocks: usize,
        query_start: Option<usize>,
        votes: &BTreeMap<TokenId, f64>,
        strength: f64,
        seed: u64,
    ) -> Vec<f32> {
        let mut out = Vec::new();
        self.finish_logits_into(context, n_blocks, query_start, votes, strength, seed, &mut out);
        out
    }

    /// [`InductionLm::finish_logits`] writing into a caller-owned buffer —
    /// the allocation-free tail behind [`DecodeSession::logits_into`] on
    /// [`incremental::InductionLmSession`] (decode on this substrate is
    /// dominated by this vocab-wide pass, so the per-step `Vec` it used to
    /// return was measurable at concurrency 1).
    #[allow(clippy::too_many_arguments)]
    fn finish_logits_into(
        &self,
        context: &[TokenId],
        n_blocks: usize,
        query_start: Option<usize>,
        votes: &BTreeMap<TokenId, f64>,
        strength: f64,
        seed: u64,
        out: &mut Vec<f32>,
    ) {
        let vocab = self.tokenizer.vocab();
        let n = vocab.len();
        let mut p = vec![0.0f64; n];

        let p_ind = Self::normalized(votes);
        let n_examples = n_blocks.saturating_sub(1);

        let state = prior::value_state(context, &self.tokenizer);
        match state {
            Some(s) => {
                let prior_pairs =
                    self.cfg
                        .prior
                        .next_token_weights(s, &self.tokenizer, self.newline, self.eos);
                let raw_w = strength / (strength + self.cfg.saturation);
                match s {
                    ValueState::Start | ValueState::AfterInt { .. } => {
                        let w_ind = raw_w.min(self.cfg.copy_cap_start);
                        Self::add_weighted(&mut p, &p_ind, w_ind);
                        Self::add_weighted(&mut p, &prior_pairs, 1.0 - w_ind);
                        // Format drift grows with the number of examples;
                        // additionally, some long prompts are outright
                        // "confusing" and reliably derail the response.
                        if matches!(s, ValueState::Start) && !self.drift_ids.is_empty() {
                            let ramp = ((n_examples as f64 - 20.0) / 80.0).clamp(0.0, 1.0);
                            let query_start = query_start.unwrap_or(context.len());
                            // Salting with the block count makes each value
                            // onset (the original query, and any restarted
                            // example after a derail) an independent draw —
                            // a derailed response usually recovers at its
                            // next Performance line, as the paper's deviant
                            // outputs did.
                            let confused =
                                self.prompt_hash_unit(context, query_start, n_blocks as u64)
                                    < self.cfg.confusion_at_100 * ramp;
                            let drift = if confused {
                                self.cfg.drift_confused
                            } else {
                                self.cfg.drift_base
                                    + self.cfg.drift_slope * (n_examples as f64 / 100.0).min(1.0)
                            };
                            for v in p.iter_mut() {
                                *v *= 1.0 - drift;
                            }
                            let total_w: f64 = self.drift_ids.iter().map(|&(_, w)| w).sum();
                            for &(d, w) in &self.drift_ids {
                                p[d as usize] += drift * w / total_w;
                            }
                        }
                    }
                    ValueState::InFraction { frac_digits } => {
                        let remaining = self.cfg.prior.target_decimals.saturating_sub(frac_digits);
                        if remaining >= 3 {
                            let w_exact = raw_w.min(self.cfg.copy_cap_frac);
                            let smeared = self.smear(votes);
                            let w_smear = if smeared.is_empty() {
                                0.0
                            } else {
                                self.cfg.smear_weight * raw_w
                            };
                            let w_prior = (1.0 - w_exact - w_smear).max(0.0);
                            Self::add_weighted(&mut p, &p_ind, w_exact);
                            Self::add_weighted(&mut p, &smeared, w_smear);
                            Self::add_weighted(&mut p, &prior_pairs, w_prior);
                        } else if remaining == 0 {
                            // End of the mantissa: what follows is format
                            // scaffold ("\n" in decimal prompts, "e" in
                            // scientific ones), copied as strongly as any
                            // other scaffold token.
                            let w_ind = raw_w.min(self.cfg.copy_cap_start);
                            Self::add_weighted(&mut p, &p_ind, w_ind);
                            Self::add_weighted(&mut p, &prior_pairs, 1.0 - w_ind);
                        } else {
                            let w_ind = raw_w.min(self.cfg.copy_cap_frac);
                            Self::add_weighted(&mut p, &p_ind, w_ind);
                            Self::add_weighted(&mut p, &prior_pairs, 1.0 - w_ind);
                        }
                    }
                }
            }
            None => {
                // Scaffold text: pure induction; an empty vote set falls
                // back to the background (plus a nudge toward stopping).
                if strength > 0.0 {
                    Self::add_weighted(&mut p, &p_ind, 0.97);
                    p[self.newline as usize] += 0.02;
                    p[self.eos as usize] += 0.01;
                } else {
                    p[self.newline as usize] += 0.5;
                    p[self.eos as usize] += 0.5;
                }
            }
        }

        // Uniform background over non-special tokens.
        let bg_each = self.cfg.background / self.num_non_special as f64;
        let specials = vocab.num_specials();
        for v in p.iter_mut().take(n).skip(specials) {
            *v = *v * (1.0 - self.cfg.background) + bg_each;
        }
        // EOS is special but must stay reachable where assigned above.

        // To logits with seed-keyed jitter (support never changes).
        let t_len = context.len() as u64;
        out.clear();
        out.extend(p.iter().enumerate().map(|(i, &prob)| {
            if prob <= 0.0 {
                f32::NEG_INFINITY
            } else {
                let mut key = [0u8; 24];
                key[..8].copy_from_slice(&seed.to_le_bytes());
                key[8..16].copy_from_slice(&t_len.to_le_bytes());
                key[16..24].copy_from_slice(&(i as u64).to_le_bytes());
                let u = hash_to_unit(hash_bytes(&key)) as f32;
                (prob.ln() as f32) + self.cfg.jitter_eps * (u - 0.5)
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenerateSpec};
    use crate::sampler::Sampler;

    fn example(tiles: (i64, i64, i64), value: &str) -> String {
        format!(
            "Hyperparameter configuration: size is SM, first_array_packed is True, \
             second_array_packed is False, interchange_first_two_loops is False, \
             outer_loop_tiling_factor is {}, middle_loop_tiling_factor is {}, \
             inner_loop_tiling_factor is {}\nPerformance: {value}\n",
            tiles.0, tiles.1, tiles.2
        )
    }

    fn prompt(values: &[&str]) -> String {
        let tiles = [(80, 64, 100), (4, 8, 16), (32, 50, 96), (128, 20, 8)];
        let mut p = String::from("Here are the examples:\n");
        for (i, v) in values.iter().enumerate() {
            p.push_str(&example(tiles[i % tiles.len()], v));
        }
        p.push_str("Please complete the following:\n");
        p.push_str(
            "Hyperparameter configuration: size is SM, first_array_packed is True, \
             second_array_packed is False, interchange_first_two_loops is False, \
             outer_loop_tiling_factor is 80, middle_loop_tiling_factor is 64, \
             inner_loop_tiling_factor is 128\nPerformance: ",
        );
        p
    }

    fn gen(model: &InductionLm, text: &str, seed: u64) -> crate::trace::GenerationTrace {
        let ids = model.tokenizer().encode(text);
        let spec = GenerateSpec {
            sampler: Sampler::paper(),
            max_tokens: 12,
            stop_tokens: vec![
                model.tokenizer().vocab().token_id("\n").unwrap(),
                model.tokenizer().vocab().token_id(EOS).unwrap(),
            ],
            trace_min_prob: 1e-4,
            seed,
        };
        let model = std::sync::Arc::new(model.clone());
        generate(&model, &ids, &spec).unwrap()
    }

    #[test]
    fn generates_a_wellformed_decimal_value() {
        let m = InductionLm::paper(0);
        let trace = gen(&m, &prompt(&["0.0022155", "0.0051230"]), 1);
        let text = trace.decode(m.tokenizer());
        let text = text.trim();
        assert!(
            text.parse::<f64>().is_ok(),
            "expected a parseable decimal, got {text:?}"
        );
        assert!(text.starts_with("0."), "SM values start 0., got {text:?}");
    }

    #[test]
    fn second_token_is_always_the_period() {
        let m = InductionLm::paper(0);
        for seed in 0..5 {
            let trace = gen(&m, &prompt(&["0.0022155", "0.0051230", "0.0031999"]), seed);
            assert!(trace.steps.len() >= 2);
            assert_eq!(
                m.tokenizer().vocab().token_str(trace.steps[1].chosen),
                ".",
                "seed {seed}"
            );
            assert_eq!(
                trace.steps[1].num_possibilities(),
                1,
                "Table II row 2: exactly one choice"
            );
        }
    }

    #[test]
    fn fraction_positions_have_hundreds_of_possibilities() {
        let m = InductionLm::paper(0);
        let trace = gen(&m, &prompt(&["0.0022155", "0.0051230", "0.0031999"]), 2);
        // Paper Table II: means of 318/537 options at positions 3/4 with
        // stds above 300 — counts vary wildly with ICL value spread. Here
        // the first fraction groups are tightly clustered (002/005/003), so
        // position 3 offers few-but-multiple options, while the scattered
        // second groups (215/123/199) blow position 4 wide open.
        let c3 = trace.steps[2].num_possibilities();
        let c4 = trace.steps[3].num_possibilities();
        assert!(c3 >= 3, "3rd token should offer multiple options, got {c3}");
        assert!(
            (30..=1110).contains(&c4),
            "4th token should offer many options, got {c4}"
        );
    }

    #[test]
    fn values_cluster_on_icl_prefixes() {
        // All ICL values share the prefix 0.002 — the sampled third token
        // should usually be the shared group.
        let m = InductionLm::paper(0);
        let mut hits = 0;
        for seed in 0..20 {
            let trace = gen(&m, &prompt(&["0.0022155", "0.0024890", "0.0021003"]), seed);
            let text = trace.decode(m.tokenizer());
            if text.trim().starts_with("0.002") {
                hits += 1;
            }
        }
        assert!(
            hits >= 12,
            "expected clustering on the common prefix, got {hits}/20"
        );
    }

    #[test]
    fn seeds_share_token_sets_with_jittered_probs() {
        let a = InductionLm::paper(1);
        let b = InductionLm::paper(2);
        let ids = a.tokenizer().encode(&prompt(&["0.0022155", "0.0051230"]));
        let la = a.logits(&ids);
        let lb = b.logits(&ids);
        let support = |l: &[f32]| {
            l.iter()
                .enumerate()
                .filter(|(_, v)| v.is_finite())
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        };
        assert_eq!(support(&la), support(&lb), "identical token sets");
        let diff: f32 = la
            .iter()
            .zip(&lb)
            .filter(|(x, _)| x.is_finite())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max);
        assert!(diff > 0.0, "probabilities must differ across seeds");
        assert!(diff <= 2.0 * a.cfg.jitter_eps, "but only trivially: {diff}");
    }

    #[test]
    fn same_seed_logits_are_deterministic() {
        let m = InductionLm::paper(3);
        let ids = m.tokenizer().encode(&prompt(&["0.0022155"]));
        assert_eq!(m.logits(&ids), m.logits(&ids));
    }

    #[test]
    fn xl_style_values_produce_multiple_first_digit_options() {
        let m = InductionLm::paper(0);
        let ids = m
            .tokenizer()
            .encode(&prompt(&["1.7341093", "2.7012345", "2.8891234"]));
        let logits = m.logits(&ids);
        // Check the full (unfiltered) temperature distribution: nucleus
        // sampling may collapse onto the dominant mode, but the recorded
        // "nonzero logit" set of Figure 4 keeps both leading digits.
        let dist = Sampler {
            top_k: 0,
            top_p: 1.0,
            ..Sampler::paper()
        }
        .distribution(&logits);
        let digits: Vec<&str> = dist
            .iter()
            .filter(|&&(_, p)| p >= 1e-3)
            .map(|&(id, _)| m.tokenizer().vocab().token_str(id))
            .filter(|s| s.len() == 1 && s.chars().all(|c| c.is_ascii_digit()))
            .collect();
        assert!(
            digits.len() >= 2,
            "bimodal first digits expected, got {digits:?}"
        );
    }

    #[test]
    fn without_performance_marker_no_value_is_forced() {
        let m = InductionLm::paper(0);
        let ids = m.tokenizer().encode("just some text with no structure ");
        let logits = m.logits(&ids);
        // must still be a valid distribution over something
        assert!(logits.iter().any(|v| v.is_finite()));
    }

    #[test]
    fn empty_context_is_safe() {
        let m = InductionLm::paper(0);
        let logits = m.logits(&[]);
        assert_eq!(logits.len(), m.tokenizer().vocab().len());
        assert!(logits.iter().any(|v| v.is_finite()));
    }

    #[test]
    fn drift_probability_grows_with_examples() {
        let m = InductionLm::paper(0);
        let few = m.tokenizer().encode(&prompt(&["0.0022155"]));
        let values = vec!["0.0022155"; 40];
        let many = m.tokenizer().encode(&prompt(&values));
        let drift_mass = |ctx: &[TokenId]| {
            let l = m.logits(ctx);
            m.drift_ids
                .iter()
                .map(|&(d, _)| {
                    let v = l[d as usize];
                    if v.is_finite() {
                        (v as f64).exp()
                    } else {
                        0.0
                    }
                })
                .sum::<f64>()
        };
        assert!(
            drift_mass(&many) > drift_mass(&few),
            "drift should grow with ICL count"
        );
    }
}
