//! Incremental decoding for [`InductionLm`].
//!
//! The batch [`crate::model::LanguageModel::logits`] path re-derives three
//! things from scratch on every call: the block segmentation
//! ([`super::blocks::ContextMap::segment`], O(T)), the per-block config
//! similarities (O(blocks x config)), and — dominating everything — the
//! suffix-match scan of [`InductionLm`]'s induction votes, which compares
//! the trailing tokens against every earlier position (O(T x max_match)).
//! Over a generation of G tokens that is O(G·T·max_match).
//!
//! [`InductionLmSession`] maintains all three incrementally:
//!
//! * **segmentation** — block starts, frozen `Performance` positions and
//!   per-block config token sets grow in O(1) per appended token;
//! * **similarities** — integer intersection counts `|config ∩ query|`
//!   updated per append, so each Jaccard is the *same* integer division the
//!   batch path performs (bit-identical similarities);
//! * **suffix matches** — the match length of position `t` against the
//!   current context tail obeys `m'(t) = tokens[t-1] == x ? min(1 + m(t-1),
//!   max_match) : 0` when `x` is appended, so the sparse set of nonzero
//!   match lengths is rebuilt from an occurrence index in O(#occurrences of
//!   x) per append. The map is keyed by position in a [`BTreeMap`] so vote
//!   accumulation runs in the batch path's ascending-position order.
//!
//! `logits()` then assembles votes from the sparse match set and hands them
//! to the same `finish_logits` tail the batch path uses: priors, smearing,
//! drift, background and jitter are shared code, not a reimplementation.
//!
//! The session's logit jitter is keyed by a session-owned seed initialised
//! from the model's. [`DecodeSession::rekey`] swaps that seed, which is
//! exactly the only seed-dependent state `InductionLm` has (format drift and
//! prompt confusion are prompt-keyed by design — all sampling seeds must
//! agree on whether a prompt derails, as they did in the paper's
//! inspection). That makes cross-seed prompt-prefix sharing sound: prefill
//! once, fork per seed, rekey each fork.

use super::InductionLm;
use crate::session::DecodeSession;
use lmpeel_tokenizer::TokenId;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Incremental state of one `Hyperparameter ...` block.
#[derive(Debug, Clone)]
struct BlockState {
    /// Position of the anchor token.
    start: usize,
    /// Position of the block's `Performance` token; once set, the config
    /// token set is frozen.
    perf_pos: Option<usize>,
    /// Distinct tokens of the configuration region (anchor inclusive,
    /// `Performance` exclusive) — the batch path's config-span set.
    config: BTreeSet<TokenId>,
    /// `|config ∩ query config|`, maintained as an integer so the session's
    /// Jaccard is the very division the batch segmentation computes.
    inter_q: usize,
}

/// Incremental [`DecodeSession`] over an [`InductionLm`].
///
/// Logits agree with the model's batch path on every prefix (the
/// equivalence proptests in this module pin the two together); appends cost
/// O(occurrences of the appended token) instead of the batch path's
/// O(context x max_match) per decode step.
#[derive(Debug, Clone)]
pub struct InductionLmSession {
    model: Arc<InductionLm>,
    tokens: Vec<TokenId>,
    /// Jitter seed; starts as the model's, swappable via `rekey`.
    seed: u64,
    blocks: Vec<BlockState>,
    /// token -> ascending positions at which it occurs.
    occ: BTreeMap<TokenId, Vec<usize>>,
    /// position `t` -> current suffix-match length `m(t) >= 1`: the number
    /// of trailing context tokens that match the tokens before `t`, capped
    /// at `max_match`. Positions absent from the map have `m(t) = 0`.
    match_len: BTreeMap<usize, usize>,
}

impl InductionLmSession {
    /// Empty session over `model`, jitter-keyed by the model's seed.
    pub fn new(model: Arc<InductionLm>) -> Self {
        let seed = model.seed();
        Self {
            model,
            tokens: Vec::new(),
            seed,
            blocks: Vec::new(),
            occ: BTreeMap::new(),
            match_len: BTreeMap::new(),
        }
    }

    /// Index of the block containing position `pos` (positions before the
    /// first anchor belong to none). Blocks tile the context from the first
    /// anchor onward, so containment needs no end bound.
    fn block_of(&self, pos: usize) -> Option<usize> {
        self.blocks
            .partition_point(|b| b.start <= pos)
            .checked_sub(1)
    }

    /// Jaccard similarity of each block's config set against the query
    /// block's, from the maintained intersection counts.
    fn sims(&self) -> Vec<f64> {
        let q_len = match self.blocks.last() {
            Some(q) => q.config.len(),
            None => return vec![],
        };
        self.blocks
            .iter()
            .map(|b| b.inter_q as f64 / (q_len + b.config.len() - b.inter_q) as f64)
            .collect()
    }

    /// The induction votes for the current context, mirroring the batch
    /// `InductionLm::induction_votes` term for term — same weights, same
    /// short-match fallback, same ascending-position accumulation order —
    /// but walking only the sparse nonzero-match set.
    fn assemble_votes(&self) -> (BTreeMap<TokenId, f64>, f64) {
        let cfg = self.model.config();
        let t_end = self.tokens.len();
        let mut votes: BTreeMap<TokenId, f64> = BTreeMap::new();
        let mut strength = 0.0f64;
        if t_end < cfg.min_match + 1 {
            return (votes, strength);
        }
        let sims = self.sims();
        let query_block = self.blocks.len().checked_sub(1);
        let best_sim = sims
            .iter()
            .take(sims.len().saturating_sub(1))
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let block_weight = |pos: usize| -> f64 {
            match self.block_of(pos) {
                Some(b) if Some(b) == query_block => cfg.self_block_discount,
                Some(b) if best_sim.is_finite() => (cfg.sim_sharpness * (sims[b] - best_sim)).exp(),
                Some(_) => 1.0,
                None => cfg.non_block_weight,
            }
        };
        let mut short_votes: BTreeMap<TokenId, f64> = BTreeMap::new();
        let mut short_strength = 0.0f64;
        for (&t, &k) in &self.match_len {
            if k >= cfg.min_match {
                let base = cfg.lambda.powi(k as i32);
                *votes.entry(self.tokens[t]).or_insert(0.0) += base * block_weight(t);
                strength += base;
            } else {
                let base = cfg.lambda;
                *short_votes.entry(self.tokens[t]).or_insert(0.0) += base * block_weight(t);
                short_strength += base;
            }
        }
        if votes.is_empty() {
            return (short_votes, short_strength);
        }
        (votes, strength)
    }
}

impl DecodeSession for InductionLmSession {
    fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    fn append(&mut self, token: TokenId) {
        let p = self.tokens.len();

        // Suffix matches: appending `x` zeroes every position not preceded
        // by `x` and extends every position that is, per the recurrence in
        // the module docs. `occ` does not yet contain `p`, so only genuine
        // earlier positions contribute.
        let mut next = BTreeMap::new();
        if let Some(positions) = self.occ.get(&token) {
            let max_match = self.model.config().max_match;
            for &q in positions {
                let prev = self.match_len.get(&q).copied().unwrap_or(0);
                next.insert(q + 1, (prev + 1).min(max_match));
            }
        }
        self.match_len = next;
        self.occ.entry(token).or_default().push(p);

        // Segmentation and similarity counts.
        let anchors = self.model.anchor_ids();
        if token == anchors.hyper {
            let mut config = BTreeSet::new();
            config.insert(token);
            self.blocks.push(BlockState {
                start: p,
                perf_pos: None,
                config,
                inter_q: 0,
            });
            // The query block changed: rebuild intersections against the
            // new singleton query set {Hyperparameter}.
            for b in &mut self.blocks {
                b.inter_q = usize::from(b.config.contains(&token));
            }
        } else if let Some(qi) = self.blocks.len().checked_sub(1) {
            if self.blocks[qi].perf_pos.is_none() {
                if token == anchors.perf {
                    self.blocks[qi].perf_pos = Some(p);
                } else if self.blocks[qi].config.insert(token) {
                    // The query config gained a distinct token: every block
                    // already containing it intersects one deeper (the
                    // query itself included, keeping its self-sim at 1).
                    for b in &mut self.blocks {
                        if b.config.contains(&token) {
                            b.inter_q += 1;
                        }
                    }
                }
            }
        }

        self.tokens.push(token);
    }

    fn logits(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.logits_into(&mut out);
        out
    }

    /// Native buffer-reusing path: the shared `finish_logits` tail writes
    /// straight into `out`, so a decode loop on this substrate performs no
    /// vocab-wide allocation per step.
    fn logits_into(&self, out: &mut Vec<f32>) {
        let (votes, strength) = self.assemble_votes();
        let query_start = self.blocks.last().map(|b| b.start);
        self.model.finish_logits_into(
            &self.tokens,
            self.blocks.len(),
            query_start,
            &votes,
            strength,
            self.seed,
            out,
        );
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn fork(&self) -> Box<dyn DecodeSession> {
        Box::new(self.clone())
    }

    fn rekey(&mut self, seed: u64) -> bool {
        self.seed = seed;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LanguageModel;

    fn example(tiles: (i64, i64, i64), value: &str) -> String {
        format!(
            "Hyperparameter configuration: size is SM, outer_loop_tiling_factor is {}, \
             middle_loop_tiling_factor is {}, inner_loop_tiling_factor is {}\n\
             Performance: {value}\n",
            tiles.0, tiles.1, tiles.2
        )
    }

    fn prompt(values: &[&str]) -> String {
        let tiles = [(80, 64, 100), (4, 8, 16), (32, 50, 96), (128, 20, 8)];
        let mut p = String::from("Here are the examples:\n");
        for (i, v) in values.iter().enumerate() {
            p.push_str(&example(tiles[i % tiles.len()], v));
        }
        p.push_str(
            "Hyperparameter configuration: size is SM, outer_loop_tiling_factor is 80, \
             middle_loop_tiling_factor is 64, inner_loop_tiling_factor is 128\n\
             Performance: ",
        );
        p
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(&x, &y)| match (x.is_finite(), y.is_finite()) {
                (true, true) => (x - y).abs(),
                (false, false) => {
                    assert_eq!(x, y, "support mismatch");
                    0.0
                }
                _ => panic!("support mismatch: {x} vs {y}"),
            })
            .fold(0.0, f32::max)
    }

    #[test]
    fn session_matches_batch_at_every_prefix_of_a_real_prompt() {
        let m = Arc::new(InductionLm::paper(3));
        let ids = m
            .tokenizer()
            .encode(&prompt(&["0.0022155", "0.0051230", "0.0031999"]));
        let mut s = m.clone().session();
        for (i, &t) in ids.iter().enumerate() {
            s.append(t);
            let diff = max_abs_diff(&s.logits(), &m.logits(&ids[..=i]));
            assert!(diff < 1e-4, "prefix {}: max diff {diff}", i + 1);
        }
    }

    #[test]
    fn session_matches_batch_through_a_generation_tail() {
        // Continue past the prompt with generated-looking tokens, covering
        // the value states and the post-value scaffold.
        let m = Arc::new(InductionLm::paper(0));
        let tok = m.tokenizer();
        let mut ids = tok.encode(&prompt(&["0.0022155", "0.0051230"]));
        ids.extend(tok.encode("0.0023117\nHyperparameter"));
        let mut s = m.clone().session();
        for (i, &t) in ids.iter().enumerate() {
            s.append(t);
            let diff = max_abs_diff(&s.logits(), &m.logits(&ids[..=i]));
            assert!(diff < 1e-4, "prefix {}: max diff {diff}", i + 1);
        }
    }

    #[test]
    fn empty_session_matches_empty_batch() {
        let m = Arc::new(InductionLm::paper(0));
        let s = m.clone().session();
        assert_eq!(max_abs_diff(&s.logits(), &m.logits(&[])), 0.0);
    }

    #[test]
    fn fork_is_independent_and_rekey_matches_a_reseeded_model() {
        let a = Arc::new(InductionLm::paper(1));
        let b = InductionLm::paper(9);
        let ids = a.tokenizer().encode(&prompt(&["0.0022155", "0.0051230"]));
        let mut parent = a.clone().session();
        parent.extend(&ids);
        let before = parent.logits();
        {
            let mut fork = parent.fork();
            assert!(fork.rekey(9), "induction sessions can re-key jitter");
            let diff = max_abs_diff(&fork.logits(), &b.logits(&ids));
            assert!(diff < 1e-6, "rekeyed fork vs seed-9 model: {diff}");
            fork.append(a.tokenizer().encode("0")[0]);
        }
        assert_eq!(parent.logits(), before, "fork must not disturb the parent");
        let diff = max_abs_diff(&parent.logits(), &a.logits(&ids));
        assert!(diff < 1e-6, "parent still keyed by its own seed");
    }

    #[test]
    fn match_lengths_follow_the_recurrence() {
        let m = Arc::new(InductionLm::paper(0));
        let tok = m.tokenizer();
        let ids = tok.encode("80 64 80 64 80");
        let mut s = InductionLmSession::new(m.clone());
        for &t in &ids {
            s.append(t);
        }
        // Batch ground truth: longest common suffix ending before t vs the
        // full tail, capped.
        let cfg = m.config();
        for t in 1..ids.len() {
            let mut k = 0usize;
            while k < cfg.max_match && k < t {
                if ids[t - 1 - k] != ids[ids.len() - 1 - k] {
                    break;
                }
                k += 1;
            }
            assert_eq!(s.match_len.get(&t).copied().unwrap_or(0), k, "position {t}");
        }
    }

    mod equivalence_props {
        use super::*;
        use proptest::prelude::*;

        /// Random streams over a small alphabet that includes the anchor
        /// tokens, so segmentation, value states and drift all get
        /// exercised, with heavy repetition to drive the match index.
        fn arb_stream() -> impl Strategy<Value = Vec<u8>> {
            proptest::collection::vec(0u8..12, 1..80)
        }

        fn alphabet(m: &InductionLm) -> Vec<TokenId> {
            let v = m.tokenizer().vocab();
            let out: Vec<TokenId> = [
                "Hyperparameter",
                "Performance",
                ": ",
                "\n",
                " is",
                "0",
                ".",
                "002",
                "215",
                "80",
                " ",
                ", ",
            ]
            .iter()
            .filter_map(|s| v.token_id(s))
            .collect();
            assert!(out.len() >= 8, "alphabet unexpectedly sparse");
            out
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn random_streams_agree_with_batch(stream in arb_stream(), seed in 0u64..8) {
                let m = Arc::new(InductionLm::paper(seed));
                let alpha = alphabet(&m);
                let ids: Vec<TokenId> =
                    stream.iter().map(|&i| alpha[i as usize % alpha.len()]).collect();
                let mut s = m.clone().session();
                for (i, &t) in ids.iter().enumerate() {
                    s.append(t);
                    let diff = max_abs_diff(&s.logits(), &m.logits(&ids[..=i]));
                    prop_assert!(diff < 1e-4, "prefix {}: max diff {diff}", i + 1);
                }
            }

            #[test]
            fn forked_sessions_agree_with_batch_on_divergent_tails(
                stem in arb_stream(),
                tail_a in arb_stream(),
                tail_b in arb_stream(),
            ) {
                let m = Arc::new(InductionLm::paper(0));
                let alpha = alphabet(&m);
                let to_ids = |s: &[u8]| -> Vec<TokenId> {
                    s.iter().map(|&i| alpha[i as usize % alpha.len()]).collect()
                };
                let stem = to_ids(&stem);
                let (tail_a, tail_b) = (to_ids(&tail_a), to_ids(&tail_b));
                let mut parent = m.clone().session();
                parent.extend(&stem);
                let mut fa = parent.fork();
                fa.extend(&tail_a);
                let mut ctx_a = stem.clone();
                ctx_a.extend_from_slice(&tail_a);
                prop_assert!(max_abs_diff(&fa.logits(), &m.logits(&ctx_a)) < 1e-4);
                drop(fa);
                let mut fb = parent.fork();
                fb.extend(&tail_b);
                let mut ctx_b = stem.clone();
                ctx_b.extend_from_slice(&tail_b);
                prop_assert!(max_abs_diff(&fb.logits(), &m.logits(&ctx_b)) < 1e-4);
            }
        }
    }
}
