//! Error surface of the decoding loops.
//!
//! Before the serve redesign the generation entry points panicked on
//! malformed inputs (empty vocabulary, zero token budget). A panic is
//! acceptable inside a one-shot experiment binary but not inside a
//! long-lived inference service, where a single bad request must become a
//! rejected response rather than a dead scheduler thread. Every decoding
//! entry point therefore returns `Result<_, LmError>` and the service maps
//! the error onto the request's response handle.

use std::fmt;

/// Hard ceiling on `max_tokens` a single generation may request.
///
/// The paper's longest generations are 96 tokens (candidate proposals);
/// this bound exists so one malformed request cannot pin the scheduler in
/// an effectively unbounded decode loop.
pub const MAX_TOKEN_BUDGET: usize = 16_384;

/// Everything that can go wrong while building a spec or running a decode
/// loop.
#[derive(Debug, Clone, PartialEq)]
pub enum LmError {
    /// The model returned an empty logit vector, or one with no feasible
    /// token (all `-inf`): there is nothing to sample.
    EmptyVocab,
    /// `max_tokens == 0`: the request could never produce a step.
    ZeroMaxTokens,
    /// `max_tokens` exceeded [`MAX_TOKEN_BUDGET`].
    BudgetExhausted {
        /// Tokens the spec asked for.
        requested: usize,
        /// The ceiling that rejected it.
        budget: usize,
    },
    /// A spec field failed validation (non-finite probability threshold,
    /// negative temperature, ...). The payload says which.
    InvalidSpec(String),
}

impl fmt::Display for LmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LmError::EmptyVocab => {
                write!(
                    f,
                    "model produced no feasible next token (empty vocabulary)"
                )
            }
            LmError::ZeroMaxTokens => write!(f, "max_tokens must be at least 1"),
            LmError::BudgetExhausted { requested, budget } => {
                write!(
                    f,
                    "max_tokens {requested} exceeds the token budget {budget}"
                )
            }
            LmError::InvalidSpec(why) => write!(f, "invalid generation spec: {why}"),
        }
    }
}

impl std::error::Error for LmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LmError::BudgetExhausted {
            requested: 99_999,
            budget: MAX_TOKEN_BUDGET,
        };
        let msg = e.to_string();
        assert!(msg.contains("99999"));
        assert!(msg.contains("16384"));
        assert!(LmError::EmptyVocab.to_string().contains("vocabulary"));
        assert!(LmError::InvalidSpec("bad".into())
            .to_string()
            .contains("bad"));
    }
}
