//! Deterministic, splittable random-number plumbing.
//!
//! Every experiment in the paper is defined by a tuple of discrete choices —
//! array size, number of ICL examples, dataset replica, sampling seed. To
//! make every table and figure regenerate bit-identically, all randomness in
//! the workspace flows through [`ChaCha8Rng`] streams derived from a root
//! seed and a structured [`SeedDomain`] label via a stable 64-bit hash
//! (FNV-1a). Two different domains never collide in practice, and the same
//! domain always yields the same stream — independent of rand's unstable
//! `StdRng` internals and of platform endianness.

use rand_chacha::rand_core::SeedableRng;
pub use rand_chacha::ChaCha8Rng;

/// Structured label identifying an independent randomness consumer.
///
/// The variants cover the experiment axes of the paper; `Custom` is an
/// escape hatch for tests and tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeedDomain {
    /// Dataset-level measurement jitter for a given array-size tag.
    DatasetNoise(u64),
    /// Selection of in-context examples: (replica index, icl count).
    IclSelection(u64, u64),
    /// Query-configuration selection for a replica.
    QuerySelection(u64),
    /// LLM sampling for a given experiment seed index.
    Sampling(u64),
    /// GBDT training internals (subsampling, column sampling).
    GbdtTraining(u64),
    /// Randomized hyperparameter search draw.
    HyperSearch(u64),
    /// Train/test splitting.
    Split(u64),
    /// Anything else; pick a unique tag.
    Custom(u64),
}

impl SeedDomain {
    fn tag(&self) -> (u64, u64, u64) {
        match *self {
            SeedDomain::DatasetNoise(a) => (1, a, 0),
            SeedDomain::IclSelection(a, b) => (2, a, b),
            SeedDomain::QuerySelection(a) => (3, a, 0),
            SeedDomain::Sampling(a) => (4, a, 0),
            SeedDomain::GbdtTraining(a) => (5, a, 0),
            SeedDomain::HyperSearch(a) => (6, a, 0),
            SeedDomain::Split(a) => (7, a, 0),
            SeedDomain::Custom(a) => (8, a, 0),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_u64(state: u64, word: u64) -> u64 {
    let mut h = state;
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Derive a child seed from a root seed and a domain label.
///
/// Stable across releases: the mapping is pure FNV-1a over the little-endian
/// bytes of `(root, discriminant, a, b)`.
pub fn derive_seed(root: u64, domain: SeedDomain) -> u64 {
    let (d, a, b) = domain.tag();
    let mut h = FNV_OFFSET;
    h = fnv1a_u64(h, root);
    h = fnv1a_u64(h, d);
    h = fnv1a_u64(h, a);
    h = fnv1a_u64(h, b);
    h
}

/// A ChaCha8 RNG for the given root seed and domain.
pub fn seeded_rng(root: u64, domain: SeedDomain) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(derive_seed(root, domain))
}

/// Stable 64-bit hash of an arbitrary byte string (FNV-1a); used for
/// configuration-keyed deterministic jitter in the performance model.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Map a 64-bit hash to a uniform f64 in `[0, 1)`.
pub fn hash_to_unit(h: u64) -> f64 {
    // Use the top 53 bits for a dyadic uniform in [0,1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn derivation_is_deterministic() {
        let a = derive_seed(42, SeedDomain::Sampling(3));
        let b = derive_seed(42, SeedDomain::Sampling(3));
        assert_eq!(a, b);
    }

    #[test]
    fn domains_do_not_collide() {
        use SeedDomain::*;
        let domains = [
            DatasetNoise(0),
            IclSelection(0, 0),
            IclSelection(0, 1),
            IclSelection(1, 0),
            QuerySelection(0),
            Sampling(0),
            GbdtTraining(0),
            HyperSearch(0),
            Split(0),
            Custom(0),
        ];
        let mut seen = std::collections::HashSet::new();
        for d in domains {
            assert!(seen.insert(derive_seed(7, d)), "collision for {d:?}");
        }
    }

    #[test]
    fn root_seed_changes_stream() {
        assert_ne!(
            derive_seed(1, SeedDomain::Sampling(0)),
            derive_seed(2, SeedDomain::Sampling(0))
        );
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut r1 = seeded_rng(9, SeedDomain::Split(4));
        let mut r2 = seeded_rng(9, SeedDomain::Split(4));
        for _ in 0..16 {
            assert_eq!(r1.random::<u64>(), r2.random::<u64>());
        }
    }

    #[test]
    fn known_answer_guard() {
        // Guards against accidental changes to the hash; update deliberately.
        assert_eq!(derive_seed(0, SeedDomain::Custom(0)), {
            let mut h = FNV_OFFSET;
            for w in [0u64, 8, 0, 0] {
                h = fnv1a_u64(h, w);
            }
            h
        });
    }

    #[test]
    fn hash_to_unit_in_range() {
        for i in 0..1000u64 {
            let u = hash_to_unit(hash_bytes(&i.to_le_bytes()));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn hash_to_unit_looks_uniform() {
        let n = 10_000u64;
        let mean: f64 = (0..n)
            .map(|i| hash_to_unit(hash_bytes(&i.to_le_bytes())))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
