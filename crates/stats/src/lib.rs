//! Statistics and metrics substrate for the LM-Peel reproduction.
//!
//! The paper evaluates every predictor — the XGBoost-style baseline, the
//! language model, and the hypothetical post-hoc decoders — with the same
//! three regression metrics: the coefficient of determination ([`r2_score`]),
//! Mean Absolute Relative Error ([`mare`]) and Mean Squared Relative Error
//! ([`msre`]). It then aggregates per-experiment metrics across all settings
//! with Central-Limit-Theorem style summaries (§IV-A). This crate provides
//! those primitives plus supporting machinery: streaming [`summary::Welford`]
//! accumulators, [`histogram`]s for the figure reproductions, weighted
//! [`quantile`](histogram::weighted_quantile) extraction for the
//! mean/median-decoding study (§IV-C), relative-error "needle" counting
//! (§IV-C.1), and deterministic seedable RNG plumbing used by every crate in
//! the workspace.
//!
//! Everything here is dependency-light and deterministic; no wall-clock, no
//! global state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod metrics;
pub mod needle;
pub mod rng;
pub mod summary;

pub use histogram::{Histogram, HistogramSpec};
pub use metrics::{
    mae, mare, mse, msre, r2_score, relative_error, rmse, spearman, RegressionReport,
};
pub use needle::{needle_fraction, NeedleReport};
pub use rng::{derive_seed, seeded_rng, SeedDomain};
pub use summary::{CltInterval, Summary, Welford};
