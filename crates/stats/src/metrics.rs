//! Regression quality metrics used throughout the paper.
//!
//! The paper reports three headline metrics (§III-C): the coefficient of
//! determination (R²), Mean Absolute Relative Error (MARE) and Mean Squared
//! Relative Error (MSRE). Relative metrics are preferred "to improve the
//! comparability of results across all experimental settings" — the SM and
//! XL datasets have output domains that differ by three orders of magnitude.

/// Relative error of a single prediction with respect to ground truth.
///
/// Defined as `|pred - truth| / |truth|`. Ground truths in this workspace are
/// strictly positive runtimes, but the function is defensive: a zero truth
/// with a zero prediction yields `0.0`, and a zero truth with a nonzero
/// prediction yields `f64::INFINITY`.
pub fn relative_error(pred: f64, truth: f64) -> f64 {
    let diff = (pred - truth).abs();
    if diff == 0.0 {
        0.0
    } else if truth == 0.0 {
        f64::INFINITY
    } else {
        diff / truth.abs()
    }
}

fn check_paired(pred: &[f64], truth: &[f64]) {
    assert_eq!(
        pred.len(),
        truth.len(),
        "prediction and ground-truth slices must be the same length"
    );
    assert!(!pred.is_empty(), "metrics require at least one observation");
}

/// Mean Absolute Relative Error.
///
/// `MARE = mean_i |pred_i - truth_i| / |truth_i|`
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn mare(pred: &[f64], truth: &[f64]) -> f64 {
    check_paired(pred, truth);
    let sum: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| relative_error(p, t))
        .sum();
    sum / pred.len() as f64
}

/// Mean Squared Relative Error.
///
/// `MSRE = mean_i ((pred_i - truth_i) / truth_i)^2`
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn msre(pred: &[f64], truth: &[f64]) -> f64 {
    check_paired(pred, truth);
    let sum: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| {
            let r = relative_error(p, t);
            r * r
        })
        .sum();
    sum / pred.len() as f64
}

/// Mean Absolute Error.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    check_paired(pred, truth);
    pred.iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean Squared Error.
pub fn mse(pred: &[f64], truth: &[f64]) -> f64 {
    check_paired(pred, truth);
    pred.iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64
}

/// Root Mean Squared Error.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    mse(pred, truth).sqrt()
}

/// Coefficient of determination (R² score).
///
/// `R² = 1 - SS_res / SS_tot` where `SS_tot` is measured around the mean of
/// the ground truth. A model that always predicts the ground-truth mean
/// scores 0; worse-than-mean predictors score negative (the paper observes a
/// *mean* LLM R² of −6.643, so negative values are first-class here). If the
/// ground truth is constant (`SS_tot == 0`), returns 1.0 for exact
/// predictions and `f64::NEG_INFINITY` otherwise, mirroring scikit-learn's
/// convention closely enough for our use.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn r2_score(pred: &[f64], truth: &[f64]) -> f64 {
    check_paired(pred, truth);
    let mean_t: f64 = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|&t| (t - mean_t) * (t - mean_t)).sum();
    let ss_res: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Average rank of each element, handling ties by midranks.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap());
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = midrank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation between predictions and ground truth.
///
/// An autotuner only needs the surrogate to *rank* configurations
/// correctly — a predictor with terrible absolute error but perfect rank
/// correlation still finds the best configuration. Ties receive midranks;
/// a constant input yields `NaN` (no ranking exists).
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn spearman(pred: &[f64], truth: &[f64]) -> f64 {
    check_paired(pred, truth);
    let rp = ranks(pred);
    let rt = ranks(truth);
    let n = pred.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let mut cov = 0.0;
    let mut var_p = 0.0;
    let mut var_t = 0.0;
    for (a, b) in rp.iter().zip(&rt) {
        cov += (a - mean) * (b - mean);
        var_p += (a - mean) * (a - mean);
        var_t += (b - mean) * (b - mean);
    }
    cov / (var_p * var_t).sqrt()
}

/// Bundle of the three paper metrics for one evaluation setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionReport {
    /// Coefficient of determination.
    pub r2: f64,
    /// Mean Absolute Relative Error.
    pub mare: f64,
    /// Mean Squared Relative Error.
    pub msre: f64,
    /// Number of (prediction, truth) pairs scored.
    pub n: usize,
}

impl RegressionReport {
    /// Score a batch of predictions against ground truth.
    ///
    /// # Panics
    /// Panics if the slices differ in length or are empty.
    pub fn score(pred: &[f64], truth: &[f64]) -> Self {
        Self {
            r2: r2_score(pred, truth),
            mare: mare(pred, truth),
            msre: msre(pred, truth),
            n: pred.len(),
        }
    }
}

impl std::fmt::Display for RegressionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "R2={:+.4} MARE={:.4} MSRE={:.4} (n={})",
            self.r2, self.mare, self.msre, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(1.0, 1.0), 0.0);
        assert!((relative_error(1.5, 1.0) - 0.5).abs() < EPS);
        assert!((relative_error(0.5, 1.0) - 0.5).abs() < EPS);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }

    #[test]
    fn relative_error_is_symmetric_in_sign_of_residual() {
        let up = relative_error(2.2, 2.0);
        let down = relative_error(1.8, 2.0);
        assert!((up - down).abs() < EPS);
    }

    #[test]
    fn perfect_predictions() {
        let t = [0.1, 0.2, 0.3, 4.0];
        assert_eq!(r2_score(&t, &t), 1.0);
        assert_eq!(mare(&t, &t), 0.0);
        assert_eq!(msre(&t, &t), 0.0);
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(rmse(&t, &t), 0.0);
    }

    #[test]
    fn mean_predictor_has_zero_r2() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let mean = 2.5;
        let pred = [mean; 4];
        assert!(r2_score(&pred, &truth).abs() < EPS);
    }

    #[test]
    fn bad_predictor_has_negative_r2() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let pred = [4.0, 3.0, 2.0, 1.0];
        assert!(r2_score(&pred, &truth) < 0.0);
    }

    #[test]
    fn constant_truth_conventions() {
        let truth = [2.0, 2.0];
        assert_eq!(r2_score(&[2.0, 2.0], &truth), 1.0);
        assert_eq!(r2_score(&[2.0, 3.0], &truth), f64::NEG_INFINITY);
    }

    #[test]
    fn mare_and_msre_known_values() {
        let truth = [1.0, 2.0];
        let pred = [1.5, 1.0]; // rel errs: 0.5, 0.5
        assert!((mare(&pred, &truth) - 0.5).abs() < EPS);
        assert!((msre(&pred, &truth) - 0.25).abs() < EPS);
    }

    #[test]
    fn msre_penalizes_outliers_harder_than_mare() {
        let truth = [1.0, 1.0, 1.0, 1.0];
        let pred = [1.0, 1.0, 1.0, 5.0]; // one 400% outlier
        let a = mare(&pred, &truth);
        let s = msre(&pred, &truth);
        assert!(s > a, "msre {s} should exceed mare {a} with an outlier");
    }

    #[test]
    fn report_display_is_stable() {
        let r = RegressionReport::score(&[1.0, 2.0], &[1.0, 4.0]);
        let s = format!("{r}");
        assert!(s.contains("MARE"), "display should label metrics: {s}");
        assert!(s.contains("n=2"));
    }

    #[test]
    fn spearman_basics() {
        // perfect monotone relation, regardless of scale
        let truth = [1.0, 2.0, 3.0, 4.0];
        let pred = [10.0, 200.0, 3000.0, 40000.0];
        assert!((spearman(&pred, &truth) - 1.0).abs() < 1e-12);
        // perfect anti-monotone
        let anti = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&anti, &truth) + 1.0).abs() < 1e-12);
        // constant prediction has no ranking
        assert!(spearman(&[1.0; 4], &truth).is_nan());
    }

    #[test]
    fn spearman_handles_ties_with_midranks() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let pred = [1.0, 1.0, 2.0, 3.0];
        let rho = spearman(&pred, &truth);
        assert!(rho > 0.9 && rho < 1.0, "tied but strongly monotone: {rho}");
    }

    #[test]
    fn spearman_is_scale_invariant_where_r2_is_not() {
        let truth = [1.0, 2.0, 3.0, 4.0, 5.0];
        let pred: Vec<f64> = truth.iter().map(|t| t * 100.0).collect();
        assert!(r2_score(&pred, &truth) < 0.0, "R2 punishes the scale error");
        assert!((spearman(&pred, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let _ = mare(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_slices_panic() {
        let _ = r2_score(&[], &[]);
    }
}
