//! Streaming summaries and Central-Limit-Theorem aggregation.
//!
//! §IV-A of the paper aggregates MARE/MSRE across *all* experimental settings
//! "via the Central Limit Theorem as the mean of MARE and MSRE gradually
//! converge to the model's expected true capability", reporting a mean and
//! standard deviation for each metric. [`Welford`] provides a numerically
//! stable one-pass accumulator for those aggregates; [`Summary`] is its
//! frozen result and [`CltInterval`] a normal-approximation confidence
//! interval on the mean, following the "adding error bars to evals"
//! methodology the paper cites.

/// One-pass numerically stable mean/variance accumulator (Welford's method).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation into the accumulator.
    ///
    /// Non-finite observations are counted separately by callers if needed;
    /// pushing a NaN poisons the mean, so debug builds assert finiteness.
    pub fn push(&mut self, x: f64) {
        debug_assert!(
            x.is_finite(),
            "Welford::push requires finite samples, got {x}"
        );
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold an entire slice of observations.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Merge another accumulator into this one (parallel reduction support).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `None` if no observations.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sample variance (Bessel-corrected); `None` with fewer than 2 samples.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation; `None` with fewer than 2 samples.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Freeze into an immutable [`Summary`].
    ///
    /// # Panics
    /// Panics if no observations were pushed.
    pub fn finish(&self) -> Summary {
        assert!(self.n > 0, "cannot summarize an empty accumulator");
        Summary {
            n: self.n,
            mean: self.mean,
            std_dev: self.std_dev().unwrap_or(0.0),
            min: self.min,
            max: self.max,
        }
    }
}

/// Frozen summary of a batch of observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `n == 1`).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarize a non-empty slice.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn of(xs: &[f64]) -> Self {
        let mut w = Welford::new();
        w.extend(xs);
        w.finish()
    }

    /// Standard error of the mean, `std_dev / sqrt(n)`.
    pub fn std_error(&self) -> f64 {
        self.std_dev / (self.n as f64).sqrt()
    }

    /// CLT normal-approximation confidence interval on the mean.
    ///
    /// `z` is the standard-normal quantile (1.96 for 95%).
    pub fn clt_interval(&self, z: f64) -> CltInterval {
        let half = z * self.std_error();
        CltInterval {
            mean: self.mean,
            lo: self.mean - half,
            hi: self.mean + half,
            n: self.n,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean={:.4} std={:.4} min={:.4} max={:.4} (n={})",
            self.mean, self.std_dev, self.min, self.max, self.n
        )
    }
}

/// Normal-approximation confidence interval for a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CltInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Sample count behind the estimate.
    pub n: u64,
}

impl CltInterval {
    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_mean() {
        let w = Welford::new();
        assert_eq!(w.mean(), None);
        assert_eq!(w.variance(), None);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn single_observation() {
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), Some(3.0));
        assert_eq!(w.variance(), None);
        let s = w.finish();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs = [0.1, 2.5, -3.0, 7.25, 0.0, 1.5];
        let s = Summary::of(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean - mean).abs() < 1e-12);
        assert!((s.std_dev - var.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, -3.0);
        assert_eq!(s.max, 7.25);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let mut whole = Welford::new();
        whole.extend(&xs);
        let mut a = Welford::new();
        a.extend(&xs[..3]);
        let mut b = Welford::new();
        b.extend(&xs[3..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-12);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.extend(&[1.0, 2.0]);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn clt_interval_shrinks_with_n() {
        let narrow: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let wide = &narrow[..10];
        let si_narrow = Summary::of(&narrow).clt_interval(1.96);
        let si_wide = Summary::of(wide).clt_interval(1.96);
        assert!(si_narrow.hi - si_narrow.lo < si_wide.hi - si_wide.lo);
        assert!(si_narrow.contains(si_narrow.mean));
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let base = 1e9;
        let xs = [base + 4.0, base + 7.0, base + 13.0, base + 16.0];
        let s = Summary::of(&xs);
        assert!((s.mean - (base + 10.0)).abs() < 1e-3);
        let exact_var = 30.0; // variance of [4,7,13,16]
        assert!((s.std_dev * s.std_dev - exact_var).abs() < 1e-3);
    }
}
