//! "Needles in a haystack" error-bound analysis (§IV-C.1).
//!
//! The paper treats the distribution of LLM-generable values as a haystack
//! and asks what fraction of values ("needles") fall within a given relative
//! error bound of the ground truth — a ceiling on what any hypothetical
//! post-hoc decoder could achieve. The same computation applied to a
//! point-predictor's test outputs gives the comparison column for XGBoost
//! (95% / 52% / 6% at the 50% / 10% / 1% bounds with 100 training examples).

use crate::metrics::relative_error;

/// The paper's three headline relative-error thresholds.
pub const PAPER_THRESHOLDS: [f64; 3] = [0.50, 0.10, 0.01];

/// Fraction of `(prediction, truth)` pairs whose relative error is at most
/// `bound`.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn needle_fraction(pred: &[f64], truth: &[f64], bound: f64) -> f64 {
    assert_eq!(pred.len(), truth.len(), "paired slices required");
    assert!(!pred.is_empty(), "needle fraction requires observations");
    let hits = pred
        .iter()
        .zip(truth)
        .filter(|&(&p, &t)| relative_error(p, t) <= bound)
        .count();
    hits as f64 / pred.len() as f64
}

/// Weighted variant: each candidate value carries a probability weight, and
/// the result is the probability mass within the bound. Used on the
/// generable-value distributions where each alternative decoding has a joint
/// decode probability.
///
/// Returns 0.0 when total weight is zero.
pub fn weighted_needle_mass(candidates: &[(f64, f64)], truth: f64, bound: f64) -> f64 {
    let total: f64 = candidates.iter().map(|&(_, w)| w).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let hit: f64 = candidates
        .iter()
        .filter(|&&(v, _)| relative_error(v, truth) <= bound)
        .map(|&(_, w)| w)
        .sum();
    hit / total
}

/// Existence variant: does *any* candidate fall within the bound? This is
/// the paper's oracle notion — a perfect post-hoc decoder that can pick any
/// generable value.
pub fn any_needle(candidates: &[(f64, f64)], truth: f64, bound: f64) -> bool {
    candidates
        .iter()
        .any(|&(v, w)| w > 0.0 && relative_error(v, truth) <= bound)
}

/// Needle fractions at each of the paper's thresholds for one predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeedleReport {
    /// Fraction within 50% relative error.
    pub within_50pct: f64,
    /// Fraction within 10% relative error.
    pub within_10pct: f64,
    /// Fraction within 1% relative error.
    pub within_1pct: f64,
}

impl NeedleReport {
    /// Score a point predictor at the paper's three thresholds.
    ///
    /// # Panics
    /// Panics if the slices differ in length or are empty.
    pub fn score(pred: &[f64], truth: &[f64]) -> Self {
        Self {
            within_50pct: needle_fraction(pred, truth, PAPER_THRESHOLDS[0]),
            within_10pct: needle_fraction(pred, truth, PAPER_THRESHOLDS[1]),
            within_1pct: needle_fraction(pred, truth, PAPER_THRESHOLDS[2]),
        }
    }

    /// Build from a per-query oracle: for each query, 1 if any generable
    /// value hit the bound, averaged across queries.
    pub fn from_oracle_hits(hits_per_bound: [&[bool]; 3]) -> Self {
        let frac = |hs: &[bool]| {
            assert!(!hs.is_empty(), "oracle report requires observations");
            hs.iter().filter(|&&h| h).count() as f64 / hs.len() as f64
        };
        Self {
            within_50pct: frac(hits_per_bound[0]),
            within_10pct: frac(hits_per_bound[1]),
            within_1pct: frac(hits_per_bound[2]),
        }
    }

    /// True when `self` is at least as good as `other` at every threshold.
    pub fn dominates(&self, other: &NeedleReport) -> bool {
        self.within_50pct >= other.within_50pct
            && self.within_10pct >= other.within_10pct
            && self.within_1pct >= other.within_1pct
    }
}

impl std::fmt::Display for NeedleReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "<=50%: {:5.1}%  <=10%: {:5.1}%  <=1%: {:5.1}%",
            self.within_50pct * 100.0,
            self.within_10pct * 100.0,
            self.within_1pct * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_predictions_hit_every_bound() {
        let t = [1.0, 2.0, 3.0];
        let r = NeedleReport::score(&t, &t);
        assert_eq!(r.within_50pct, 1.0);
        assert_eq!(r.within_1pct, 1.0);
    }

    #[test]
    fn fractions_are_monotone_in_bound() {
        let truth = [1.0, 1.0, 1.0, 1.0];
        let pred = [1.005, 1.05, 1.3, 2.5];
        let r = NeedleReport::score(&pred, &truth);
        assert!(r.within_50pct >= r.within_10pct);
        assert!(r.within_10pct >= r.within_1pct);
        assert_eq!(r.within_50pct, 0.75);
        assert_eq!(r.within_10pct, 0.5);
        assert_eq!(r.within_1pct, 0.25);
    }

    #[test]
    fn boundary_is_inclusive() {
        assert_eq!(needle_fraction(&[1.5], &[1.0], 0.5), 1.0);
        assert_eq!(needle_fraction(&[1.5000001], &[1.0], 0.5), 0.0);
    }

    #[test]
    fn weighted_mass_normalizes() {
        let cands = [(1.0, 3.0), (2.0, 1.0)];
        // truth 1.0, bound 10% -> only first candidate hits -> 3/4 of mass
        assert!((weighted_needle_mass(&cands, 1.0, 0.1) - 0.75).abs() < 1e-12);
        assert_eq!(weighted_needle_mass(&[], 1.0, 0.1), 0.0);
    }

    #[test]
    fn oracle_any_needle() {
        let cands = [(5.0, 0.9), (1.01, 0.1)];
        assert!(any_needle(&cands, 1.0, 0.05));
        assert!(!any_needle(&cands, 1.0, 0.001));
        // zero-weight candidates don't count
        assert!(!any_needle(&[(1.0, 0.0)], 1.0, 0.5));
    }

    #[test]
    fn dominance_matches_paper_claim_shape() {
        // XGBoost(100): 95 / 52 / 6; LLM oracle: ~50 / 20 / 3 (paper values)
        let xgb = NeedleReport {
            within_50pct: 0.95,
            within_10pct: 0.52,
            within_1pct: 0.06,
        };
        let llm = NeedleReport {
            within_50pct: 0.50,
            within_10pct: 0.20,
            within_1pct: 0.03,
        };
        assert!(xgb.dominates(&llm));
        assert!(!llm.dominates(&xgb));
    }

    #[test]
    fn from_oracle_hits_averages_each_bound() {
        let b50 = [true, true, false, true];
        let b10 = [true, false, false, false];
        let b01 = [false, false, false, false];
        let r = NeedleReport::from_oracle_hits([&b50, &b10, &b01]);
        assert_eq!(r.within_50pct, 0.75);
        assert_eq!(r.within_10pct, 0.25);
        assert_eq!(r.within_1pct, 0.0);
    }
}
