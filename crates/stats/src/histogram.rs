//! Histograms and weighted quantiles for the figure reproductions.
//!
//! Figures 3 and 4 of the paper plot distributions of LLM-generable values
//! against in-context example values; §IV-C extracts the mean and median of
//! the *probability-weighted* generable-value distribution. This module
//! provides a fixed-bin [`Histogram`] with linear or logarithmic bin edges,
//! plus weighted mean/median/quantile helpers over `(value, weight)` pairs.

/// Bin layout for a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HistogramSpec {
    /// `bins` equal-width bins spanning `[lo, hi)`.
    Linear {
        /// Inclusive lower edge of the first bin.
        lo: f64,
        /// Exclusive upper edge of the last bin.
        hi: f64,
        /// Number of bins (must be > 0).
        bins: usize,
    },
    /// `bins` log-uniform bins spanning `[lo, hi)`; requires `0 < lo < hi`.
    Log {
        /// Inclusive lower edge of the first bin (must be > 0).
        lo: f64,
        /// Exclusive upper edge of the last bin.
        hi: f64,
        /// Number of bins (must be > 0).
        bins: usize,
    },
}

impl HistogramSpec {
    fn validate(&self) {
        match *self {
            HistogramSpec::Linear { lo, hi, bins } => {
                assert!(bins > 0, "histogram needs at least one bin");
                assert!(lo < hi, "histogram range must be non-empty: [{lo}, {hi})");
            }
            HistogramSpec::Log { lo, hi, bins } => {
                assert!(bins > 0, "histogram needs at least one bin");
                assert!(
                    0.0 < lo && lo < hi,
                    "log histogram requires 0 < lo < hi, got [{lo}, {hi})"
                );
            }
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        match *self {
            HistogramSpec::Linear { bins, .. } | HistogramSpec::Log { bins, .. } => bins,
        }
    }

    /// Map a value to its bin index, or `None` if it falls outside the range
    /// (or, for log bins, is non-positive).
    pub fn bin_of(&self, x: f64) -> Option<usize> {
        match *self {
            HistogramSpec::Linear { lo, hi, bins } => {
                if x < lo || x >= hi || !x.is_finite() {
                    return None;
                }
                let frac = (x - lo) / (hi - lo);
                Some(((frac * bins as f64) as usize).min(bins - 1))
            }
            HistogramSpec::Log { lo, hi, bins } => {
                if x < lo || x >= hi || !x.is_finite() || x <= 0.0 {
                    return None;
                }
                let frac = (x.ln() - lo.ln()) / (hi.ln() - lo.ln());
                Some(((frac * bins as f64) as usize).min(bins - 1))
            }
        }
    }

    /// `(lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn edges_of(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins(), "bin index {i} out of range");
        match *self {
            HistogramSpec::Linear { lo, hi, bins } => {
                let w = (hi - lo) / bins as f64;
                (lo + w * i as f64, lo + w * (i + 1) as f64)
            }
            HistogramSpec::Log { lo, hi, bins } => {
                let lw = (hi.ln() - lo.ln()) / bins as f64;
                (
                    (lo.ln() + lw * i as f64).exp(),
                    (lo.ln() + lw * (i + 1) as f64).exp(),
                )
            }
        }
    }
}

/// A weighted fixed-bin histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    spec: HistogramSpec,
    counts: Vec<f64>,
    /// Total weight that fell outside the bin range.
    outliers: f64,
    total: f64,
}

impl Histogram {
    /// Create an empty histogram with the given bin layout.
    ///
    /// # Panics
    /// Panics on an invalid spec (zero bins, empty or inverted range).
    pub fn new(spec: HistogramSpec) -> Self {
        spec.validate();
        Self {
            counts: vec![0.0; spec.bins()],
            spec,
            outliers: 0.0,
            total: 0.0,
        }
    }

    /// Add a unit-weight observation.
    pub fn add(&mut self, x: f64) {
        self.add_weighted(x, 1.0);
    }

    /// Add an observation with an explicit weight (e.g. decode probability).
    pub fn add_weighted(&mut self, x: f64, w: f64) {
        debug_assert!(w >= 0.0, "histogram weights must be non-negative");
        self.total += w;
        match self.spec.bin_of(x) {
            Some(i) => self.counts[i] += w,
            None => self.outliers += w,
        }
    }

    /// Bin layout.
    pub fn spec(&self) -> HistogramSpec {
        self.spec
    }

    /// Per-bin accumulated weights.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Weight that fell outside the configured range.
    pub fn outlier_weight(&self) -> f64 {
        self.outliers
    }

    /// Total weight added (in-range plus outliers).
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Per-bin weights normalized to sum to 1 over in-range mass.
    /// Returns all zeros if nothing landed in range.
    pub fn normalized(&self) -> Vec<f64> {
        let in_range: f64 = self.counts.iter().sum();
        if in_range <= 0.0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c / in_range).collect()
    }

    /// Index of the heaviest bin, or `None` if the histogram is empty.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.counts.iter().all(|&c| c == 0.0) {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
    }

    /// Count local maxima with weight at least `min_mass` of in-range mass;
    /// this is how the figure-4 reproduction detects bimodality.
    pub fn modes(&self, min_mass: f64) -> usize {
        let norm = self.normalized();
        let mut modes = 0;
        for i in 0..norm.len() {
            let left = if i == 0 { 0.0 } else { norm[i - 1] };
            let right = if i + 1 == norm.len() {
                0.0
            } else {
                norm[i + 1]
            };
            if norm[i] >= min_mass && norm[i] >= left && norm[i] > right {
                modes += 1;
            }
        }
        modes
    }

    /// Render a compact ASCII bar chart (used by the figure binaries).
    pub fn ascii(&self, width: usize) -> String {
        let max = self.counts.iter().cloned().fold(0.0_f64, f64::max);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.spec.edges_of(i);
            let bar_len = if max > 0.0 {
                ((c / max) * width as f64).round() as usize
            } else {
                0
            };
            out.push_str(&format!(
                "[{lo:>10.5}, {hi:>10.5}) |{}{} {c:.4}\n",
                "#".repeat(bar_len),
                " ".repeat(width - bar_len)
            ));
        }
        out
    }
}

/// Weighted arithmetic mean of `(value, weight)` pairs.
///
/// Returns `None` if total weight is zero or the input is empty.
pub fn weighted_mean(pairs: &[(f64, f64)]) -> Option<f64> {
    let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
    if total <= 0.0 {
        return None;
    }
    Some(pairs.iter().map(|&(v, w)| v * w).sum::<f64>() / total)
}

/// Weighted quantile (q in `[0, 1]`) of `(value, weight)` pairs, by sorting
/// values and returning the smallest value whose cumulative weight reaches
/// `q * total`. `q = 0.5` is the weighted median used in §IV-C.
///
/// Returns `None` if total weight is zero or the input is empty.
pub fn weighted_quantile(pairs: &[(f64, f64)], q: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
    if total <= 0.0 {
        return None;
    }
    let mut sorted: Vec<(f64, f64)> = pairs.iter().copied().filter(|&(_, w)| w > 0.0).collect();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let target = q * total;
    let mut cum = 0.0;
    for (v, w) in &sorted {
        cum += w;
        if cum >= target {
            return Some(*v);
        }
    }
    sorted.last().map(|&(v, _)| v)
}

/// Weighted median: shorthand for `weighted_quantile(pairs, 0.5)`.
pub fn weighted_median(pairs: &[(f64, f64)]) -> Option<f64> {
    weighted_quantile(pairs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning_maps_edges_correctly() {
        let spec = HistogramSpec::Linear {
            lo: 0.0,
            hi: 10.0,
            bins: 10,
        };
        assert_eq!(spec.bin_of(0.0), Some(0));
        assert_eq!(spec.bin_of(9.999), Some(9));
        assert_eq!(spec.bin_of(10.0), None);
        assert_eq!(spec.bin_of(-0.1), None);
        assert_eq!(spec.bin_of(5.0), Some(5));
    }

    #[test]
    fn log_binning_is_uniform_in_log_space() {
        let spec = HistogramSpec::Log {
            lo: 1.0,
            hi: 1000.0,
            bins: 3,
        };
        assert_eq!(spec.bin_of(1.5), Some(0));
        assert_eq!(spec.bin_of(15.0), Some(1));
        assert_eq!(spec.bin_of(150.0), Some(2));
        assert_eq!(spec.bin_of(0.5), None);
        let (lo, hi) = spec.edges_of(1);
        assert!((lo - 10.0).abs() < 1e-9 && (hi - 100.0).abs() < 1e-9);
    }

    #[test]
    fn edges_partition_the_range() {
        let spec = HistogramSpec::Linear {
            lo: -1.0,
            hi: 1.0,
            bins: 7,
        };
        let mut prev_hi = -1.0;
        for i in 0..7 {
            let (lo, hi) = spec.edges_of(i);
            assert!((lo - prev_hi).abs() < 1e-12);
            assert!(hi > lo);
            prev_hi = hi;
        }
        assert!((prev_hi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_and_outliers_accumulate() {
        let mut h = Histogram::new(HistogramSpec::Linear {
            lo: 0.0,
            hi: 1.0,
            bins: 2,
        });
        h.add_weighted(0.25, 2.0);
        h.add_weighted(0.75, 1.0);
        h.add_weighted(5.0, 4.0); // outlier
        assert_eq!(h.counts(), &[2.0, 1.0]);
        assert_eq!(h.outlier_weight(), 4.0);
        assert_eq!(h.total_weight(), 7.0);
        let norm = h.normalized();
        assert!((norm[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mode_detection_finds_bimodal_shape() {
        let mut h = Histogram::new(HistogramSpec::Linear {
            lo: 0.0,
            hi: 10.0,
            bins: 10,
        });
        for _ in 0..5 {
            h.add(1.5);
        }
        for _ in 0..4 {
            h.add(7.5);
        }
        h.add(4.5);
        assert_eq!(h.modes(0.2), 2, "should detect two well-separated modes");
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = Histogram::new(HistogramSpec::Linear {
            lo: 0.0,
            hi: 1.0,
            bins: 4,
        });
        assert_eq!(h.mode_bin(), None);
        assert!(h.normalized().iter().all(|&x| x == 0.0));
        assert_eq!(h.modes(0.0), 0);
    }

    #[test]
    fn weighted_mean_and_median() {
        let pairs = [(1.0, 1.0), (2.0, 1.0), (10.0, 2.0)];
        let m = weighted_mean(&pairs).unwrap();
        assert!((m - (1.0 + 2.0 + 20.0) / 4.0).abs() < 1e-12);
        // total weight 4, target 2; cumulative weight reaches 2 at value 2.0
        assert_eq!(weighted_median(&pairs), Some(2.0));
        assert_eq!(weighted_quantile(&pairs, 0.25), Some(1.0));
        assert_eq!(weighted_quantile(&pairs, 0.0), Some(1.0));
        assert_eq!(weighted_quantile(&pairs, 1.0), Some(10.0));
    }

    #[test]
    fn zero_weight_inputs_yield_none() {
        assert_eq!(weighted_mean(&[]), None);
        assert_eq!(weighted_median(&[(1.0, 0.0)]), None);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let mut h = Histogram::new(HistogramSpec::Linear {
            lo: 0.0,
            hi: 1.0,
            bins: 3,
        });
        h.add(0.1);
        let art = h.ascii(20);
        assert_eq!(art.lines().count(), 3);
    }
}
