//! Polybench-style problem sizes.
//!
//! The paper's prompts (Figure 1) describe the `size` parameter as "a
//! relativistic measure of the size of data inputs to the loop nest" with
//! levels `S, SM, M, ML, L, XL` sorted smallest to largest, and state that
//! for size `SM`, `M=130` and `N=160`. Size is *not* tunable; the paper
//! evaluates two sizes (SM and XL) as distinct prediction tasks.
//!
//! The S/M/L/XL dimensions follow Polybench 4.2's syr2k dataset sizes; the
//! interpolated SM and ML levels come from the transfer-learning dataset the
//! paper reuses (Randall et al., ICS'23).

/// Problem-size level for the syr2k loop nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArraySize {
    /// Small (Polybench SMALL): M=60, N=80.
    S,
    /// Small-medium interpolation: M=130, N=160 (stated in Figure 1).
    SM,
    /// Medium (Polybench MEDIUM): M=200, N=240.
    M,
    /// Medium-large interpolation: M=600, N=720.
    ML,
    /// Large (Polybench LARGE): M=1000, N=1200.
    L,
    /// Extra-large (Polybench EXTRALARGE): M=2000, N=2600.
    XL,
}

impl ArraySize {
    /// All levels, smallest to largest.
    pub const ALL: [ArraySize; 6] = [
        ArraySize::S,
        ArraySize::SM,
        ArraySize::M,
        ArraySize::ML,
        ArraySize::L,
        ArraySize::XL,
    ];

    /// The two sizes evaluated in the paper.
    pub const PAPER_SIZES: [ArraySize; 2] = [ArraySize::SM, ArraySize::XL];

    /// `(M, N)` array dimensions for this level.
    pub fn dims(self) -> (usize, usize) {
        match self {
            ArraySize::S => (60, 80),
            ArraySize::SM => (130, 160),
            ArraySize::M => (200, 240),
            ArraySize::ML => (600, 720),
            ArraySize::L => (1000, 1200),
            ArraySize::XL => (2000, 2600),
        }
    }

    /// The `M` dimension (inner extent).
    pub fn m(self) -> usize {
        self.dims().0
    }

    /// The `N` dimension (outer extent).
    pub fn n(self) -> usize {
        self.dims().1
    }

    /// Short label as used in prompts ("SM", "XL", ...).
    pub fn label(self) -> &'static str {
        match self {
            ArraySize::S => "S",
            ArraySize::SM => "SM",
            ArraySize::M => "M",
            ArraySize::ML => "ML",
            ArraySize::L => "L",
            ArraySize::XL => "XL",
        }
    }

    /// Parse a label; inverse of [`ArraySize::label`].
    pub fn parse(s: &str) -> Option<ArraySize> {
        Self::ALL.into_iter().find(|a| a.label() == s)
    }

    /// Stable small integer tag for seed derivation.
    pub fn tag(self) -> u64 {
        match self {
            ArraySize::S => 0,
            ArraySize::SM => 1,
            ArraySize::M => 2,
            ArraySize::ML => 3,
            ArraySize::L => 4,
            ArraySize::XL => 5,
        }
    }

    /// Total floating-point elements touched by syr2k at this size:
    /// `A[N,M] + B[N,M] + C[N,N]`.
    pub fn footprint_elems(self) -> usize {
        let (m, n) = self.dims();
        2 * n * m + n * n
    }
}

impl std::fmt::Display for ArraySize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sm_matches_figure_1() {
        assert_eq!(ArraySize::SM.dims(), (130, 160));
    }

    #[test]
    fn sizes_are_strictly_increasing() {
        for w in ArraySize::ALL.windows(2) {
            assert!(w[0].m() < w[1].m(), "{:?} vs {:?}", w[0], w[1]);
            assert!(w[0].n() < w[1].n());
            assert!(w[0] < w[1], "ordering should follow size");
        }
    }

    #[test]
    fn labels_roundtrip() {
        for a in ArraySize::ALL {
            assert_eq!(ArraySize::parse(a.label()), Some(a));
            assert_eq!(a.to_string(), a.label());
        }
        assert_eq!(ArraySize::parse("XXL"), None);
    }

    #[test]
    fn tags_are_unique() {
        let mut tags: Vec<u64> = ArraySize::ALL.iter().map(|a| a.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 6);
    }

    #[test]
    fn footprint_grows_with_size() {
        assert!(ArraySize::XL.footprint_elems() > ArraySize::SM.footprint_elems());
        // SM: 2*160*130 + 160*160 = 41600 + 25600
        assert_eq!(ArraySize::SM.footprint_elems(), 67_200);
    }

    #[test]
    fn paper_sizes_are_sm_and_xl() {
        assert_eq!(ArraySize::PAPER_SIZES, [ArraySize::SM, ArraySize::XL]);
    }
}
