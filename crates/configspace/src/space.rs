//! Configuration spaces: cross products of parameters with a mixed-radix
//! index bijection, enumeration and sampling.

use crate::param::{Config, ParamDef, ParamValue};
use rand::seq::SliceRandom;
use rand::RngExt;

/// A configuration space: an ordered list of parameters whose cross product
/// forms the search space.
///
/// Configurations are indexable: `index ∈ [0, cardinality)` maps bijectively
/// to a [`Config`] via mixed-radix decomposition with the *last* parameter
/// varying fastest (row-major, matching nested-loop enumeration order).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSpace {
    params: Vec<ParamDef>,
}

impl ConfigSpace {
    /// Build a space from parameter definitions.
    ///
    /// # Panics
    /// Panics if `params` is empty or contains duplicate names.
    pub fn new(params: Vec<ParamDef>) -> Self {
        assert!(!params.is_empty(), "a configuration space needs parameters");
        for i in 0..params.len() {
            for j in (i + 1)..params.len() {
                assert_ne!(
                    params[i].name(),
                    params[j].name(),
                    "duplicate parameter name {:?}",
                    params[i].name()
                );
            }
        }
        Self { params }
    }

    /// The parameter definitions, in declaration order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Position of a parameter by name.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name() == name)
    }

    /// Total number of distinct configurations (product of cardinalities).
    pub fn cardinality(&self) -> u64 {
        self.params.iter().map(|p| p.cardinality() as u64).product()
    }

    /// The configuration at a given flat index.
    ///
    /// # Panics
    /// Panics if `index >= cardinality()`.
    pub fn config_at(&self, index: u64) -> Config {
        assert!(
            index < self.cardinality(),
            "config index {index} out of range"
        );
        let mut rem = index;
        let mut choices = vec![0u16; self.params.len()];
        for (i, p) in self.params.iter().enumerate().rev() {
            let card = p.cardinality() as u64;
            choices[i] = (rem % card) as u16;
            rem /= card;
        }
        Config::from_choices(choices)
    }

    /// The flat index of a configuration.
    ///
    /// # Panics
    /// Panics if the configuration's arity or any choice index is
    /// incompatible with this space.
    pub fn index_of(&self, config: &Config) -> u64 {
        assert_eq!(
            config.len(),
            self.params.len(),
            "configuration arity mismatch"
        );
        let mut index = 0u64;
        for (i, p) in self.params.iter().enumerate() {
            let c = config.choice(i);
            assert!(
                c < p.cardinality(),
                "choice {c} out of range for parameter {:?}",
                p.name()
            );
            index = index * p.cardinality() as u64 + c as u64;
        }
        index
    }

    /// Typed value of parameter `i` in a configuration.
    pub fn value(&self, config: &Config, i: usize) -> ParamValue {
        self.params[i].value_of(config.choice(i))
    }

    /// Typed value of a parameter by name, or `None` if no such parameter.
    pub fn value_by_name(&self, config: &Config, name: &str) -> Option<ParamValue> {
        self.param_index(name).map(|i| self.value(config, i))
    }

    /// Build a configuration from typed values in declaration order.
    ///
    /// # Panics
    /// Panics if arity mismatches or a value is outside its domain.
    pub fn config_from_values(&self, values: &[ParamValue]) -> Config {
        assert_eq!(values.len(), self.params.len(), "value arity mismatch");
        let choices = self
            .params
            .iter()
            .zip(values)
            .map(|(p, v)| {
                p.index_of(v).unwrap_or_else(|| {
                    panic!("value {v:?} not in domain of parameter {:?}", p.name())
                }) as u16
            })
            .collect();
        Config::from_choices(choices)
    }

    /// Numeric feature vector for surrogate models (see
    /// [`ParamDef::feature_of`]).
    pub fn featurize(&self, config: &Config) -> Vec<f64> {
        self.params
            .iter()
            .enumerate()
            .map(|(i, p)| p.feature_of(config.choice(i)))
            .collect()
    }

    /// Iterate over every configuration in index order.
    pub fn enumerate(&self) -> impl Iterator<Item = Config> + '_ {
        (0..self.cardinality()).map(move |i| self.config_at(i))
    }

    /// Sample one configuration uniformly at random.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> Config {
        let choices = self
            .params
            .iter()
            .map(|p| rng.random_range(0..p.cardinality()) as u16)
            .collect();
        Config::from_choices(choices)
    }

    /// Sample `n` *distinct* configurations uniformly without replacement.
    ///
    /// Uses index-set sampling (Floyd's algorithm) so it is O(n) even for
    /// huge spaces.
    ///
    /// # Panics
    /// Panics if `n` exceeds the space cardinality.
    pub fn sample_distinct<R: RngExt + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Config> {
        let card = self.cardinality();
        assert!(
            (n as u64) <= card,
            "cannot sample {n} distinct configs from a space of {card}"
        );
        // BTreeSet so the pre-shuffle order is the sorted index order, not
        // hash order: the shuffle below must start from the same
        // permutation in every process for seed-stable sampling.
        let mut picked = std::collections::BTreeSet::new();
        // Floyd's algorithm for a uniform n-subset of [0, card).
        for j in (card - n as u64)..card {
            let t = rng.random_range(0..=j);
            if !picked.insert(t) {
                picked.insert(j);
            }
        }
        let mut indices: Vec<u64> = picked.into_iter().collect();
        indices.shuffle(rng);
        indices.into_iter().map(|i| self.config_at(i)).collect()
    }

    /// Partition `pool` into `k` disjoint chunks of `chunk` items each,
    /// shuffling first; mirrors the paper's "five disjoint datasets with the
    /// same number of in-context learning examples".
    ///
    /// # Panics
    /// Panics if `pool.len() < k * chunk`.
    pub fn disjoint_subsets<R: RngExt + ?Sized>(
        &self,
        pool: &[Config],
        k: usize,
        chunk: usize,
        rng: &mut R,
    ) -> Vec<Vec<Config>> {
        assert!(
            pool.len() >= k * chunk,
            "pool of {} cannot supply {k} disjoint chunks of {chunk}",
            pool.len()
        );
        let mut shuffled: Vec<Config> = pool.to_vec();
        shuffled.shuffle(rng);
        (0..k)
            .map(|i| shuffled[i * chunk..(i + 1) * chunk].to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmpeel_stats::{seeded_rng, SeedDomain};

    fn small_space() -> ConfigSpace {
        ConfigSpace::new(vec![
            ParamDef::boolean("a"),
            ParamDef::ordinal("t", &[4, 8, 16]),
            ParamDef::categorical("s", &["x", "y"]),
        ])
    }

    #[test]
    fn cardinality_is_product() {
        assert_eq!(small_space().cardinality(), 2 * 3 * 2);
    }

    #[test]
    fn index_bijection_roundtrips_everywhere() {
        let s = small_space();
        for i in 0..s.cardinality() {
            let c = s.config_at(i);
            assert_eq!(s.index_of(&c), i);
        }
    }

    #[test]
    fn last_parameter_varies_fastest() {
        let s = small_space();
        let c0 = s.config_at(0);
        let c1 = s.config_at(1);
        assert_eq!(c0.choice(0), c1.choice(0));
        assert_eq!(c0.choice(1), c1.choice(1));
        assert_ne!(c0.choice(2), c1.choice(2));
    }

    #[test]
    fn enumerate_visits_every_config_once() {
        let s = small_space();
        let all: Vec<Config> = s.enumerate().collect();
        assert_eq!(all.len() as u64, s.cardinality());
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn config_from_values_roundtrip() {
        let s = small_space();
        let c = s.config_from_values(&[
            ParamValue::Bool(true),
            ParamValue::Int(8),
            ParamValue::Cat("y".into()),
        ]);
        assert_eq!(s.value(&c, 0), ParamValue::Bool(true));
        assert_eq!(s.value(&c, 1), ParamValue::Int(8));
        assert_eq!(s.value_by_name(&c, "s"), Some(ParamValue::Cat("y".into())));
        assert_eq!(s.value_by_name(&c, "nope"), None);
    }

    #[test]
    fn featurize_encodes_types() {
        let s = small_space();
        let c = s.config_from_values(&[
            ParamValue::Bool(true),
            ParamValue::Int(16),
            ParamValue::Cat("x".into()),
        ]);
        assert_eq!(s.featurize(&c), vec![1.0, 16.0, 0.0]);
    }

    #[test]
    fn sample_distinct_yields_unique_configs() {
        let s = small_space();
        let mut rng = seeded_rng(1, SeedDomain::Custom(1));
        let picks = s.sample_distinct(10, &mut rng);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn sample_distinct_full_space_is_a_permutation() {
        let s = small_space();
        let mut rng = seeded_rng(2, SeedDomain::Custom(2));
        let picks = s.sample_distinct(12, &mut rng);
        let mut idx: Vec<u64> = picks.iter().map(|c| s.index_of(c)).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..12).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_overflow_panics() {
        let s = small_space();
        let mut rng = seeded_rng(3, SeedDomain::Custom(3));
        let _ = s.sample_distinct(13, &mut rng);
    }

    #[test]
    fn disjoint_subsets_do_not_overlap() {
        let s = small_space();
        let mut rng = seeded_rng(4, SeedDomain::Custom(4));
        let pool: Vec<Config> = s.enumerate().collect();
        let subsets = s.disjoint_subsets(&pool, 3, 4, &mut rng);
        assert_eq!(subsets.len(), 3);
        let mut seen = std::collections::HashSet::new();
        for sub in &subsets {
            assert_eq!(sub.len(), 4);
            for c in sub {
                assert!(seen.insert(s.index_of(c)), "config reused across subsets");
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let _ = ConfigSpace::new(vec![ParamDef::boolean("a"), ParamDef::boolean("a")]);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let s = small_space();
        let a = s.sample(&mut seeded_rng(5, SeedDomain::Custom(5)));
        let b = s.sample(&mut seeded_rng(5, SeedDomain::Custom(5)));
        assert_eq!(a, b);
    }
}
