//! Parameter definitions and configuration values.
//!
//! A [`ParamDef`] describes one tunable component; a [`Config`] is one point
//! in the cross product of all components. Values are stored by *choice
//! index* internally (which makes the mixed-radix bijection in
//! [`crate::space`] trivial) and exposed as typed [`ParamValue`]s.

/// Definition of a single tunable parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamDef {
    /// A boolean flag (choice indices: 0 = false, 1 = true).
    Bool {
        /// Parameter name as used in prompts and CSV headers.
        name: String,
    },
    /// An ordered integer parameter with an explicit candidate list.
    Ordinal {
        /// Parameter name as used in prompts and CSV headers.
        name: String,
        /// Candidate values in ascending order.
        choices: Vec<i64>,
    },
    /// An unordered categorical parameter with string levels.
    Categorical {
        /// Parameter name as used in prompts and CSV headers.
        name: String,
        /// Candidate levels.
        choices: Vec<String>,
    },
}

impl ParamDef {
    /// Convenience constructor for a boolean parameter.
    pub fn boolean(name: &str) -> Self {
        ParamDef::Bool {
            name: name.to_string(),
        }
    }

    /// Convenience constructor for an ordinal parameter.
    ///
    /// # Panics
    /// Panics if `choices` is empty or not strictly ascending.
    pub fn ordinal(name: &str, choices: &[i64]) -> Self {
        assert!(!choices.is_empty(), "ordinal parameter needs choices");
        assert!(
            choices.windows(2).all(|w| w[0] < w[1]),
            "ordinal choices must be strictly ascending"
        );
        ParamDef::Ordinal {
            name: name.to_string(),
            choices: choices.to_vec(),
        }
    }

    /// Convenience constructor for a categorical parameter.
    ///
    /// # Panics
    /// Panics if `choices` is empty.
    pub fn categorical(name: &str, choices: &[&str]) -> Self {
        assert!(!choices.is_empty(), "categorical parameter needs choices");
        ParamDef::Categorical {
            name: name.to_string(),
            choices: choices.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Parameter name.
    pub fn name(&self) -> &str {
        match self {
            ParamDef::Bool { name }
            | ParamDef::Ordinal { name, .. }
            | ParamDef::Categorical { name, .. } => name,
        }
    }

    /// Number of distinct choices.
    pub fn cardinality(&self) -> usize {
        match self {
            ParamDef::Bool { .. } => 2,
            ParamDef::Ordinal { choices, .. } => choices.len(),
            ParamDef::Categorical { choices, .. } => choices.len(),
        }
    }

    /// Typed value for a choice index.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn value_of(&self, idx: usize) -> ParamValue {
        assert!(
            idx < self.cardinality(),
            "choice index {idx} out of range for {}",
            self.name()
        );
        match self {
            ParamDef::Bool { .. } => ParamValue::Bool(idx == 1),
            ParamDef::Ordinal { choices, .. } => ParamValue::Int(choices[idx]),
            ParamDef::Categorical { choices, .. } => ParamValue::Cat(choices[idx].clone()),
        }
    }

    /// Choice index for a typed value, or `None` if the value is not a
    /// member of this parameter's domain.
    pub fn index_of(&self, value: &ParamValue) -> Option<usize> {
        match (self, value) {
            (ParamDef::Bool { .. }, ParamValue::Bool(b)) => Some(usize::from(*b)),
            (ParamDef::Ordinal { choices, .. }, ParamValue::Int(v)) => {
                choices.iter().position(|c| c == v)
            }
            (ParamDef::Categorical { choices, .. }, ParamValue::Cat(s)) => {
                choices.iter().position(|c| c == s)
            }
            _ => None,
        }
    }

    /// Numeric feature encoding of a choice index for tree/regression models:
    /// booleans → 0/1, ordinals → the integer value, categoricals → the
    /// level index.
    pub fn feature_of(&self, idx: usize) -> f64 {
        match self {
            ParamDef::Bool { .. } => idx as f64,
            ParamDef::Ordinal { choices, .. } => choices[idx] as f64,
            ParamDef::Categorical { .. } => idx as f64,
        }
    }
}

/// A typed parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Boolean flag value.
    Bool(bool),
    /// Ordinal integer value.
    Int(i64),
    /// Categorical level.
    Cat(String),
}

impl std::fmt::Display for ParamValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Python-style True/False, matching the paper's Figure 1 prompts.
            ParamValue::Bool(true) => write!(f, "True"),
            ParamValue::Bool(false) => write!(f, "False"),
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Cat(s) => write!(f, "{s}"),
        }
    }
}

/// One point in a configuration space, stored as per-parameter choice
/// indices. Only meaningful together with the [`crate::space::ConfigSpace`]
/// that created it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Config {
    choices: Vec<u16>,
}

impl Config {
    /// Build from raw choice indices.
    pub fn from_choices(choices: Vec<u16>) -> Self {
        Self { choices }
    }

    /// Raw choice indices, one per parameter.
    pub fn choices(&self) -> &[u16] {
        &self.choices
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether the configuration has no parameters.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Choice index of parameter `i`.
    pub fn choice(&self, i: usize) -> usize {
        self.choices[i] as usize
    }

    /// Replace the choice of parameter `i`, returning a new configuration.
    pub fn with_choice(&self, i: usize, choice: u16) -> Self {
        let mut c = self.clone();
        c.choices[i] = choice;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_param_roundtrip() {
        let p = ParamDef::boolean("flag");
        assert_eq!(p.cardinality(), 2);
        assert_eq!(p.value_of(0), ParamValue::Bool(false));
        assert_eq!(p.value_of(1), ParamValue::Bool(true));
        assert_eq!(p.index_of(&ParamValue::Bool(true)), Some(1));
        assert_eq!(p.index_of(&ParamValue::Int(3)), None);
    }

    #[test]
    fn ordinal_param_roundtrip() {
        let p = ParamDef::ordinal("tile", &[4, 8, 16]);
        assert_eq!(p.cardinality(), 3);
        assert_eq!(p.value_of(2), ParamValue::Int(16));
        assert_eq!(p.index_of(&ParamValue::Int(8)), Some(1));
        assert_eq!(p.index_of(&ParamValue::Int(5)), None);
        assert_eq!(p.feature_of(1), 8.0);
    }

    #[test]
    fn categorical_param_roundtrip() {
        let p = ParamDef::categorical("size", &["S", "SM", "M"]);
        assert_eq!(p.value_of(1), ParamValue::Cat("SM".into()));
        assert_eq!(p.index_of(&ParamValue::Cat("M".into())), Some(2));
        assert_eq!(p.feature_of(2), 2.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn ordinal_rejects_unsorted_choices() {
        let _ = ParamDef::ordinal("bad", &[4, 4, 8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn value_of_out_of_range_panics() {
        let p = ParamDef::boolean("flag");
        let _ = p.value_of(2);
    }

    #[test]
    fn display_uses_python_booleans() {
        assert_eq!(ParamValue::Bool(true).to_string(), "True");
        assert_eq!(ParamValue::Bool(false).to_string(), "False");
        assert_eq!(ParamValue::Int(80).to_string(), "80");
        assert_eq!(ParamValue::Cat("XL".into()).to_string(), "XL");
    }

    #[test]
    fn config_with_choice_is_persistent() {
        let c = Config::from_choices(vec![0, 1, 2]);
        let d = c.with_choice(1, 5);
        assert_eq!(c.choice(1), 1, "original untouched");
        assert_eq!(d.choice(1), 5);
        assert_eq!(d.choice(0), 0);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }
}
