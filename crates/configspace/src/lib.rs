//! Autotuning configuration-space substrate.
//!
//! The paper tunes a compute-bound loop nest from Polybench/C `syr2k`
//! (Algorithm 1) with six tunable components: two independent optional array
//! packing operations, an optional interchange of the outermost two loops,
//! and three independent loop tile sizes drawn from eleven candidates each —
//! `11^3 * 2^3 = 10,648` unique configurations, matching the paper's dataset
//! cardinality exactly.
//!
//! The crate provides a small generic parameter-space layer
//! ([`param::ParamDef`], [`space::ConfigSpace`]) with mixed-radix
//! index↔configuration bijection, sampling and full enumeration; the
//! canonical [`syr2k`] space with a typed view; configuration
//! [`editdist`]ance and the curated minimal-edit-distance neighbourhood
//! selection of §III-B; and the exact natural-language and CSV
//! serializations from Figure 1 ([`text`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod editdist;
pub mod param;
pub mod size;
pub mod space;
pub mod syr2k;
pub mod text;

pub use editdist::{curated_neighborhood, edit_distance, ordinal_distance};
pub use param::{Config, ParamDef, ParamValue};
pub use size::ArraySize;
pub use space::ConfigSpace;
pub use syr2k::{syr2k_space, Syr2kConfig, TILE_CANDIDATES};
