//! Configuration edit distance and curated neighbourhood selection.
//!
//! §III-B: "we also evaluate the LLM's performance where all examples and
//! the prediction task have minimal configuration-space editing distance.
//! That is to say, all configurations are nearly identical to one another so
//! that the query is as well-defined by the ICL as possible."
//!
//! We define the primary edit distance as the Hamming distance over
//! parameters (the number of components one would have to edit), with a
//! secondary *ordinal distance* — the sum of normalized rank differences on
//! ordinal parameters — used to break ties so that, e.g., changing a tile
//! from 64 to 80 is considered a smaller edit than 64 to 4.

use crate::param::Config;
use crate::space::ConfigSpace;

/// Hamming edit distance: the number of parameters whose choices differ.
///
/// # Panics
/// Panics if the configurations have different arity.
pub fn edit_distance(a: &Config, b: &Config) -> usize {
    assert_eq!(a.len(), b.len(), "configuration arity mismatch");
    a.choices()
        .iter()
        .zip(b.choices())
        .filter(|(x, y)| x != y)
        .count()
}

/// Secondary ordinal distance: sum over parameters of the absolute choice
/// rank difference normalized by the parameter's cardinality minus one.
/// Boolean and categorical parameters contribute 0 or 1.
///
/// The result lies in `[0, num_params]` and refines [`edit_distance`]:
/// `ordinal_distance(a, b) <= edit_distance(a, b)` always holds.
///
/// # Panics
/// Panics if the configurations have different arity or do not belong to
/// `space`.
pub fn ordinal_distance(space: &ConfigSpace, a: &Config, b: &Config) -> f64 {
    assert_eq!(a.len(), b.len(), "configuration arity mismatch");
    assert_eq!(
        a.len(),
        space.num_params(),
        "configuration does not match space"
    );
    space
        .params()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (x, y) = (a.choice(i) as f64, b.choice(i) as f64);
            let denom = (p.cardinality().saturating_sub(1)).max(1) as f64;
            (x - y).abs() / denom
        })
        .sum()
}

/// Select the `n` configurations in the space closest to `center`, excluding
/// `center` itself, ordered by `(edit_distance, ordinal_distance, index)`.
///
/// This is the curated ICL neighbourhood of §III-B: the returned
/// configurations are "nearly identical" to the query at the center.
/// Deterministic: ties are broken by flat configuration index.
///
/// # Panics
/// Panics if `n` is not smaller than the space cardinality.
pub fn curated_neighborhood(space: &ConfigSpace, center: &Config, n: usize) -> Vec<Config> {
    let card = space.cardinality();
    assert!(
        (n as u64) < card,
        "neighbourhood of {n} too large for space of {card}"
    );
    let mut scored: Vec<(usize, f64, u64)> = Vec::with_capacity(card as usize - 1);
    for idx in 0..card {
        let c = space.config_at(idx);
        if &c == center {
            continue;
        }
        scored.push((
            edit_distance(center, &c),
            ordinal_distance(space, center, &c),
            idx,
        ));
    }
    scored.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(a.1.partial_cmp(&b.1).unwrap())
            .then(a.2.cmp(&b.2))
    });
    scored
        .into_iter()
        .take(n)
        .map(|(_, _, idx)| space.config_at(idx))
        .collect()
}

/// Maximum pairwise Hamming distance within a set of configurations; a
/// compactness diagnostic for curated ICL sets.
pub fn diameter(configs: &[Config]) -> usize {
    let mut max = 0;
    for i in 0..configs.len() {
        for j in (i + 1)..configs.len() {
            max = max.max(edit_distance(&configs[i], &configs[j]));
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamDef;
    use crate::syr2k::syr2k_space;

    fn tiny() -> ConfigSpace {
        ConfigSpace::new(vec![
            ParamDef::boolean("a"),
            ParamDef::ordinal("t", &[4, 8, 16, 32]),
        ])
    }

    #[test]
    fn edit_distance_is_a_metric() {
        let s = tiny();
        let all: Vec<Config> = s.enumerate().collect();
        for x in &all {
            assert_eq!(edit_distance(x, x), 0, "identity");
            for y in &all {
                assert_eq!(edit_distance(x, y), edit_distance(y, x), "symmetry");
                for z in &all {
                    assert!(
                        edit_distance(x, z) <= edit_distance(x, y) + edit_distance(y, z),
                        "triangle inequality"
                    );
                }
            }
        }
    }

    #[test]
    fn ordinal_distance_refines_hamming() {
        let s = tiny();
        let all: Vec<Config> = s.enumerate().collect();
        for x in &all {
            for y in &all {
                let h = edit_distance(x, y) as f64;
                let o = ordinal_distance(&s, x, y);
                assert!(o <= h + 1e-12, "ordinal {o} must not exceed hamming {h}");
                assert_eq!(o == 0.0, h == 0.0);
            }
        }
    }

    #[test]
    fn ordinal_distance_ranks_nearby_tiles_closer() {
        let s = tiny();
        let base = s.config_from_values(&[
            crate::param::ParamValue::Bool(false),
            crate::param::ParamValue::Int(8),
        ]);
        let near = base.with_choice(1, 2); // 16 (one rank away)
        let far = base.with_choice(1, 3); // 32 (two ranks away)
        assert_eq!(edit_distance(&base, &near), edit_distance(&base, &far));
        assert!(ordinal_distance(&s, &base, &near) < ordinal_distance(&s, &base, &far));
    }

    #[test]
    fn neighborhood_excludes_center_and_is_sorted() {
        let s = tiny();
        let center = s.config_at(3);
        let hood = curated_neighborhood(&s, &center, 5);
        assert_eq!(hood.len(), 5);
        assert!(!hood.contains(&center));
        let dists: Vec<usize> = hood.iter().map(|c| edit_distance(&center, c)).collect();
        assert!(
            dists.windows(2).all(|w| w[0] <= w[1]),
            "sorted by distance: {dists:?}"
        );
    }

    #[test]
    fn neighborhood_is_deterministic() {
        let s = tiny();
        let center = s.config_at(0);
        assert_eq!(
            curated_neighborhood(&s, &center, 4),
            curated_neighborhood(&s, &center, 4)
        );
    }

    #[test]
    fn syr2k_neighborhood_is_compact() {
        let s = syr2k_space();
        let center = s.config_at(5_000);
        let hood = curated_neighborhood(&s, &center, 50);
        // 50 nearest neighbours in a 6-parameter space should all be within
        // 2 edits of the center, so pairwise diameter stays small.
        assert!(hood.iter().all(|c| edit_distance(&center, c) <= 2));
        assert!(diameter(&hood) <= 4);
    }

    #[test]
    fn diameter_of_singleton_is_zero() {
        let s = tiny();
        assert_eq!(diameter(&[s.config_at(0)]), 0);
        assert_eq!(diameter(&[]), 0);
    }
}
