//! The canonical syr2k tuning space from the paper.
//!
//! Six tunables (Figure 1 / Algorithm 1):
//!
//! * `first_array_packed` — optionally pack (prefetch-copy) array `A`;
//! * `second_array_packed` — optionally pack array `B`;
//! * `interchange_first_two_loops` — optionally interchange the outermost
//!   two loops of the nest;
//! * `outer_loop_tiling_factor`, `middle_loop_tiling_factor`,
//!   `inner_loop_tiling_factor` — tile sizes for the three loops, each drawn
//!   from the same eleven candidates.
//!
//! `2 × 2 × 2 × 11³ = 10,648` configurations, matching the paper's
//! exhaustive dataset.

use crate::param::{Config, ParamDef, ParamValue};
use crate::space::ConfigSpace;

/// The eleven candidate tile sizes (Polly/ytopt-style powers of two plus
/// cache-line-friendly in-between values; includes every tile value visible
/// in the paper's Figure 1 examples: 64, 80, 100, 128).
pub const TILE_CANDIDATES: [i64; 11] = [4, 8, 16, 20, 32, 50, 64, 80, 96, 100, 128];

/// Canonical parameter names, in declaration order.
pub const PARAM_NAMES: [&str; 6] = [
    "first_array_packed",
    "second_array_packed",
    "interchange_first_two_loops",
    "outer_loop_tiling_factor",
    "middle_loop_tiling_factor",
    "inner_loop_tiling_factor",
];

/// Build the canonical syr2k configuration space.
pub fn syr2k_space() -> ConfigSpace {
    ConfigSpace::new(vec![
        ParamDef::boolean(PARAM_NAMES[0]),
        ParamDef::boolean(PARAM_NAMES[1]),
        ParamDef::boolean(PARAM_NAMES[2]),
        ParamDef::ordinal(PARAM_NAMES[3], &TILE_CANDIDATES),
        ParamDef::ordinal(PARAM_NAMES[4], &TILE_CANDIDATES),
        ParamDef::ordinal(PARAM_NAMES[5], &TILE_CANDIDATES),
    ])
}

/// Typed view of a syr2k configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Syr2kConfig {
    /// Pack array `A` before the nest.
    pub pack_a: bool,
    /// Pack array `B` before the nest.
    pub pack_b: bool,
    /// Interchange the outermost two loops.
    pub interchange: bool,
    /// Tile size of the outer loop.
    pub tile_outer: i64,
    /// Tile size of the middle loop.
    pub tile_middle: i64,
    /// Tile size of the inner loop.
    pub tile_inner: i64,
}

impl Syr2kConfig {
    /// Decode from a generic [`Config`] belonging to [`syr2k_space`].
    ///
    /// # Panics
    /// Panics if the configuration does not belong to the syr2k space.
    pub fn from_config(space: &ConfigSpace, config: &Config) -> Self {
        let get_bool = |i: usize| match space.value(config, i) {
            ParamValue::Bool(b) => b,
            v => panic!("expected bool at parameter {i}, got {v:?}"),
        };
        let get_int = |i: usize| match space.value(config, i) {
            ParamValue::Int(v) => v,
            v => panic!("expected int at parameter {i}, got {v:?}"),
        };
        Self {
            pack_a: get_bool(0),
            pack_b: get_bool(1),
            interchange: get_bool(2),
            tile_outer: get_int(3),
            tile_middle: get_int(4),
            tile_inner: get_int(5),
        }
    }

    /// Encode into a generic [`Config`] for [`syr2k_space`].
    ///
    /// # Panics
    /// Panics if a tile size is not one of [`TILE_CANDIDATES`].
    pub fn to_config(self, space: &ConfigSpace) -> Config {
        space.config_from_values(&[
            ParamValue::Bool(self.pack_a),
            ParamValue::Bool(self.pack_b),
            ParamValue::Bool(self.interchange),
            ParamValue::Int(self.tile_outer),
            ParamValue::Int(self.tile_middle),
            ParamValue::Int(self.tile_inner),
        ])
    }

    /// All tile sizes as a tuple `(outer, middle, inner)`.
    pub fn tiles(self) -> (i64, i64, i64) {
        (self.tile_outer, self.tile_middle, self.tile_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_matches_paper() {
        assert_eq!(syr2k_space().cardinality(), 10_648);
    }

    #[test]
    fn paper_figure1_tiles_are_candidates() {
        for t in [80, 64, 100, 128] {
            assert!(TILE_CANDIDATES.contains(&t), "{t} missing");
        }
    }

    #[test]
    fn typed_roundtrip_everywhere() {
        let space = syr2k_space();
        for i in (0..space.cardinality()).step_by(97) {
            let c = space.config_at(i);
            let typed = Syr2kConfig::from_config(&space, &c);
            assert_eq!(typed.to_config(&space), c);
        }
    }

    #[test]
    fn figure1_icl_example_encodes() {
        // "first_array_packed is True, second_array_packed is False,
        //  interchange_first_two_loops is False, outer 80, middle 64, inner 100"
        let space = syr2k_space();
        let typed = Syr2kConfig {
            pack_a: true,
            pack_b: false,
            interchange: false,
            tile_outer: 80,
            tile_middle: 64,
            tile_inner: 100,
        };
        let c = typed.to_config(&space);
        assert_eq!(Syr2kConfig::from_config(&space, &c), typed);
    }

    #[test]
    fn param_names_match_space() {
        let space = syr2k_space();
        for (i, name) in PARAM_NAMES.iter().enumerate() {
            assert_eq!(space.params()[i].name(), *name);
        }
    }

    #[test]
    fn featurize_exposes_tile_magnitudes() {
        let space = syr2k_space();
        let typed = Syr2kConfig {
            pack_a: false,
            pack_b: true,
            interchange: false,
            tile_outer: 128,
            tile_middle: 4,
            tile_inner: 50,
        };
        let f = space.featurize(&typed.to_config(&space));
        assert_eq!(f, vec![0.0, 1.0, 0.0, 128.0, 4.0, 50.0]);
    }

    #[test]
    fn tiles_accessor() {
        let t = Syr2kConfig {
            pack_a: false,
            pack_b: false,
            interchange: true,
            tile_outer: 8,
            tile_middle: 16,
            tile_inner: 32,
        };
        assert_eq!(t.tiles(), (8, 16, 32));
    }
}
