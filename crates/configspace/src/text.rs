//! Natural-language and CSV serialization of configurations.
//!
//! The paper presents performance data "in a natural language format" and in
//! a "feature-rich text-based CSV format" (Figure 1). The exact line shapes
//! are:
//!
//! ```text
//! Hyperparameter configuration: size is SM, first_array_packed is True, ...
//! Performance: 0.0022155
//! ```
//!
//! This module produces those strings and parses them back (the parse side
//! backs the "manual identification of relevant portions of outputs"
//! machinery in `lmpeel-core`).

use crate::param::{Config, ParamValue};
use crate::size::ArraySize;
use crate::space::ConfigSpace;

/// Number of decimal places used for runtime values in prompts.
///
/// The Figure 1 example shows `0.0022155` — seven decimal places — and the
/// token-position analysis of Table II depends on this width.
pub const RUNTIME_DECIMALS: usize = 7;

/// Format a runtime in seconds exactly as the prompts do.
pub fn format_runtime(secs: f64) -> String {
    format!("{secs:.RUNTIME_DECIMALS$}")
}

/// Value rendering styles for prompts. The paper's prompts use plain
/// decimals; §V-B hypothesizes that scientific notation, while a "stable
/// output format", "often makes the prefixes of values *less* similar,
/// which our results indicate may *harm* the model's ability to generate
/// useful answers" — the `format_study` binary tests exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValueFormat {
    /// Plain decimal with [`RUNTIME_DECIMALS`] places (Figure 1).
    #[default]
    Decimal,
    /// Normalized scientific notation, `m.mmmmmmme-x` with a 7-decimal
    /// mantissa in `[1, 10)`.
    Scientific,
}

/// Format a runtime under a [`ValueFormat`].
pub fn format_value(secs: f64, format: ValueFormat) -> String {
    match format {
        ValueFormat::Decimal => format_runtime(secs),
        ValueFormat::Scientific => {
            assert!(secs > 0.0, "scientific format requires a positive value");
            let exp = secs.log10().floor() as i32;
            let mantissa = secs / 10f64.powi(exp);
            format!("{mantissa:.RUNTIME_DECIMALS$}e{exp}")
        }
    }
}

/// Format a runtime with an explicit decimal width.
pub fn format_runtime_with(secs: f64, decimals: usize) -> String {
    format!("{secs:.decimals$}")
}

/// The `Hyperparameter configuration: ...` line for a configuration.
///
/// The size is listed first and is not tunable; tunables follow in space
/// declaration order, each as `name is value`.
pub fn nl_config_line(space: &ConfigSpace, config: &Config, size: ArraySize) -> String {
    let mut parts = Vec::with_capacity(space.num_params() + 1);
    parts.push(format!("size is {}", size.label()));
    for (i, p) in space.params().iter().enumerate() {
        parts.push(format!("{} is {}", p.name(), space.value(config, i)));
    }
    format!("Hyperparameter configuration: {}", parts.join(", "))
}

/// A full in-context example: configuration line plus `Performance:` line.
pub fn nl_example(space: &ConfigSpace, config: &Config, size: ArraySize, runtime: f64) -> String {
    format!(
        "{}\nPerformance: {}",
        nl_config_line(space, config, size),
        format_runtime(runtime)
    )
}

/// The query form of an example: configuration line plus a dangling
/// `Performance:` for the model to complete.
pub fn nl_query(space: &ConfigSpace, config: &Config, size: ArraySize) -> String {
    format!("{}\nPerformance:", nl_config_line(space, config, size))
}

/// CSV header: `size` followed by parameter names and `runtime`.
pub fn csv_header(space: &ConfigSpace) -> String {
    let mut cols = vec!["size".to_string()];
    cols.extend(space.params().iter().map(|p| p.name().to_string()));
    cols.push("runtime".to_string());
    cols.join(",")
}

/// One CSV row matching [`csv_header`].
pub fn csv_row(space: &ConfigSpace, config: &Config, size: ArraySize, runtime: f64) -> String {
    let mut cols = vec![size.label().to_string()];
    for (i, _) in space.params().iter().enumerate() {
        cols.push(space.value(config, i).to_string());
    }
    cols.push(format_runtime(runtime));
    cols.join(",")
}

/// Parse one `name is value` fragment against a parameter's domain.
fn parse_value(space: &ConfigSpace, name: &str, raw: &str) -> Option<(usize, u16)> {
    let i = space.param_index(name)?;
    let p = &space.params()[i];
    let v = match raw {
        "True" => ParamValue::Bool(true),
        "False" => ParamValue::Bool(false),
        other => {
            if let Ok(n) = other.parse::<i64>() {
                ParamValue::Int(n)
            } else {
                ParamValue::Cat(other.to_string())
            }
        }
    };
    p.index_of(&v).map(|c| (i, c as u16))
}

/// Parse a `Hyperparameter configuration:` line back into a size and
/// configuration. Whitespace around commas is tolerated (the paper's own
/// Figure 1 mixes `, ` and `,`). Returns `None` on any missing or
/// out-of-domain component.
pub fn parse_nl_config(space: &ConfigSpace, line: &str) -> Option<(ArraySize, Config)> {
    let rest = line.trim().strip_prefix("Hyperparameter configuration:")?;
    let mut size: Option<ArraySize> = None;
    let mut choices: Vec<Option<u16>> = vec![None; space.num_params()];
    for frag in rest.split(',') {
        let frag = frag.trim();
        if frag.is_empty() {
            continue;
        }
        let (name, value) = frag.split_once(" is ")?;
        let (name, value) = (name.trim(), value.trim());
        if name == "size" {
            size = ArraySize::parse(value);
            size?;
        } else {
            let (i, c) = parse_value(space, name, value)?;
            choices[i] = Some(c);
        }
    }
    let choices: Option<Vec<u16>> = choices.into_iter().collect();
    Some((size?, Config::from_choices(choices?)))
}

/// Extract the numeric value from a `Performance: <number>` line; tolerant
/// of leading/trailing junk on the number side, as LLM outputs often carry
/// trailing prose.
pub fn parse_performance(line: &str) -> Option<f64> {
    let rest = line.trim().strip_prefix("Performance:")?.trim();
    // Take the longest prefix that parses as a decimal number.
    let mut end = 0;
    let bytes = rest.as_bytes();
    let mut seen_dot = false;
    while end < bytes.len() {
        let b = bytes[end];
        if b.is_ascii_digit() {
            end += 1;
        } else if b == b'.' && !seen_dot {
            seen_dot = true;
            end += 1;
        } else {
            break;
        }
    }
    if end == 0 {
        return None;
    }
    rest[..end].parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syr2k::{syr2k_space, Syr2kConfig};

    #[test]
    fn runtime_format_matches_figure1() {
        assert_eq!(format_runtime(0.0022155), "0.0022155");
        assert_eq!(format_runtime(2.5), "2.5000000");
        assert_eq!(format_runtime_with(2.5, 2), "2.50");
    }

    #[test]
    fn figure1_line_is_reproduced_exactly() {
        let space = syr2k_space();
        let cfg = Syr2kConfig {
            pack_a: true,
            pack_b: false,
            interchange: false,
            tile_outer: 80,
            tile_middle: 64,
            tile_inner: 100,
        }
        .to_config(&space);
        let line = nl_config_line(&space, &cfg, ArraySize::SM);
        assert_eq!(
            line,
            "Hyperparameter configuration: size is SM, first_array_packed is True, \
             second_array_packed is False, interchange_first_two_loops is False, \
             outer_loop_tiling_factor is 80, middle_loop_tiling_factor is 64, \
             inner_loop_tiling_factor is 100"
        );
    }

    #[test]
    fn nl_example_and_query_shapes() {
        let space = syr2k_space();
        let cfg = space.config_at(0);
        let ex = nl_example(&space, &cfg, ArraySize::SM, 0.0022155);
        assert!(ex.ends_with("Performance: 0.0022155"));
        let q = nl_query(&space, &cfg, ArraySize::SM);
        assert!(q.ends_with("Performance:"));
    }

    #[test]
    fn nl_roundtrip_everywhere() {
        let space = syr2k_space();
        for i in (0..space.cardinality()).step_by(131) {
            let cfg = space.config_at(i);
            for size in ArraySize::PAPER_SIZES {
                let line = nl_config_line(&space, &cfg, size);
                let (s2, c2) = parse_nl_config(&space, &line).expect("parse back");
                assert_eq!(s2, size);
                assert_eq!(c2, cfg);
            }
        }
    }

    #[test]
    fn parse_tolerates_sloppy_spacing() {
        // Figure 1's own query line omits spaces after some commas.
        let space = syr2k_space();
        let line = "Hyperparameter configuration: size is SM, first_array_packed is False, \
                    second_array_packed is True, interchange_first_two_loops is False,\
                    outer_loop_tiling_factor is 128,middle_loop_tiling_factor is 80, \
                    inner_loop_tiling_factor is 80";
        let (size, cfg) = parse_nl_config(&space, line).expect("should parse");
        assert_eq!(size, ArraySize::SM);
        let typed = Syr2kConfig::from_config(&space, &cfg);
        assert!(!typed.pack_a && typed.pack_b && !typed.interchange);
        assert_eq!(typed.tiles(), (128, 80, 80));
    }

    #[test]
    fn parse_rejects_bad_lines() {
        let space = syr2k_space();
        assert_eq!(parse_nl_config(&space, "not a config"), None);
        assert_eq!(
            parse_nl_config(&space, "Hyperparameter configuration: size is QQ"),
            None,
            "unknown size"
        );
        assert_eq!(
            parse_nl_config(
                &space,
                "Hyperparameter configuration: size is SM, first_array_packed is True"
            ),
            None,
            "missing parameters"
        );
        let line = "Hyperparameter configuration: size is SM, first_array_packed is True, \
                    second_array_packed is False, interchange_first_two_loops is False, \
                    outer_loop_tiling_factor is 81, middle_loop_tiling_factor is 64, \
                    inner_loop_tiling_factor is 100";
        assert_eq!(
            parse_nl_config(&space, line),
            None,
            "81 is not a candidate tile"
        );
    }

    #[test]
    fn parse_performance_variants() {
        assert_eq!(parse_performance("Performance: 0.0022155"), Some(0.0022155));
        assert_eq!(parse_performance("  Performance: 2.5"), Some(2.5));
        assert_eq!(
            parse_performance("Performance: 1.75 seconds, approximately"),
            Some(1.75),
            "trailing prose tolerated"
        );
        assert_eq!(parse_performance("Performance: fast"), None);
        assert_eq!(parse_performance("Perf: 1.0"), None);
        assert_eq!(
            parse_performance("Performance: 1.2.3"),
            Some(1.2),
            "second dot stops parse"
        );
    }

    #[test]
    fn csv_roundtrip_shape() {
        let space = syr2k_space();
        let header = csv_header(&space);
        assert!(header.starts_with("size,first_array_packed"));
        assert!(header.ends_with("runtime"));
        let row = csv_row(&space, &space.config_at(7), ArraySize::XL, 3.25);
        assert_eq!(row.split(',').count(), header.split(',').count());
        assert!(row.starts_with("XL,"));
        assert!(row.ends_with("3.2500000"));
    }
}
