//! Feature matrices with per-feature quantile binning.
//!
//! Histogram-based split finding needs features discretized into a small
//! number of bins. [`DMatrix`] stores features column-major, computes
//! per-feature bin thresholds from the training distribution (distinct
//! values when few, quantile cuts otherwise), and caches each cell's bin
//! index for O(rows) histogram accumulation.

/// Maximum number of bins per feature.
pub const MAX_BINS: usize = 64;

/// A binned, column-major feature matrix.
#[derive(Debug, Clone)]
pub struct DMatrix {
    n_rows: usize,
    /// Raw feature values, one Vec per feature (column-major).
    columns: Vec<Vec<f64>>,
    /// Per-feature ascending bin upper edges (`value <= edge` → that bin).
    edges: Vec<Vec<f64>>,
    /// Per-feature bin index of every row.
    bins: Vec<Vec<u8>>,
}

impl DMatrix {
    /// Build from row-major features.
    ///
    /// # Panics
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "DMatrix needs at least one row");
        let n_features = rows[0].len();
        assert!(n_features > 0, "DMatrix needs at least one feature");
        assert!(
            rows.iter().all(|r| r.len() == n_features),
            "ragged feature rows"
        );
        let n_rows = rows.len();
        let mut columns = vec![Vec::with_capacity(n_rows); n_features];
        for r in rows {
            for (c, &v) in r.iter().enumerate() {
                columns[c].push(v);
            }
        }
        let edges: Vec<Vec<f64>> = columns.iter().map(|col| bin_edges(col)).collect();
        let bins = columns
            .iter()
            .zip(&edges)
            .map(|(col, e)| col.iter().map(|&v| bin_of(e, v)).collect())
            .collect();
        Self {
            n_rows,
            columns,
            edges,
            bins,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.columns.len()
    }

    /// Raw value of feature `f` at row `r`.
    #[inline]
    pub fn value(&self, r: usize, f: usize) -> f64 {
        self.columns[f][r]
    }

    /// Bin index of feature `f` at row `r`.
    #[inline]
    pub fn bin(&self, r: usize, f: usize) -> usize {
        self.bins[f][r] as usize
    }

    /// Bin upper edges of feature `f`.
    pub fn edges(&self, f: usize) -> &[f64] {
        &self.edges[f]
    }

    /// Number of bins of feature `f`.
    pub fn n_bins(&self, f: usize) -> usize {
        self.edges[f].len()
    }

    /// The split threshold between bins `b` and `b+1` of feature `f`: the
    /// upper edge of bin `b` (split sends `value <= threshold` left).
    pub fn threshold(&self, f: usize, b: usize) -> f64 {
        self.edges[f][b]
    }
}

/// Compute ascending bin upper edges for a column: all distinct values when
/// few, else `MAX_BINS` quantile cuts.
fn bin_edges(col: &[f64]) -> Vec<f64> {
    let mut sorted: Vec<f64> = col.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    sorted.dedup();
    if sorted.len() <= MAX_BINS {
        return sorted;
    }
    let mut edges = Vec::with_capacity(MAX_BINS);
    for i in 1..=MAX_BINS {
        let q = i as f64 / MAX_BINS as f64;
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        edges.push(sorted[idx]);
    }
    edges.dedup();
    edges
}

/// Bin index of `v` under ascending upper edges (first edge `>= v`).
fn bin_of(edges: &[f64], v: f64) -> u8 {
    let idx = edges.partition_point(|&e| e < v);
    idx.min(edges.len() - 1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columnar_layout_matches_rows() {
        let rows = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let m = DMatrix::from_rows(&rows);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_features(), 2);
        assert_eq!(m.value(1, 0), 2.0);
        assert_eq!(m.value(2, 1), 30.0);
    }

    #[test]
    fn few_distinct_values_become_exact_bins() {
        let rows: Vec<Vec<f64>> = [4.0, 8.0, 4.0, 16.0, 8.0]
            .iter()
            .map(|&v| vec![v])
            .collect();
        let m = DMatrix::from_rows(&rows);
        assert_eq!(m.edges(0), &[4.0, 8.0, 16.0]);
        assert_eq!(m.bin(0, 0), 0);
        assert_eq!(m.bin(1, 0), 1);
        assert_eq!(m.bin(3, 0), 2);
    }

    #[test]
    fn many_distinct_values_are_quantile_binned() {
        let rows: Vec<Vec<f64>> = (0..1000).map(|i| vec![i as f64]).collect();
        let m = DMatrix::from_rows(&rows);
        assert!(m.n_bins(0) <= MAX_BINS);
        assert!(m.n_bins(0) >= MAX_BINS / 2);
        // binning is monotone
        for r in 1..1000 {
            assert!(m.bin(r, 0) >= m.bin(r - 1, 0));
        }
    }

    #[test]
    fn thresholds_separate_bins() {
        let rows: Vec<Vec<f64>> = [1.0, 2.0, 3.0].iter().map(|&v| vec![v]).collect();
        let m = DMatrix::from_rows(&rows);
        // split at threshold(0,0)=1.0 sends value 1.0 left, 2.0/3.0 right
        assert_eq!(m.threshold(0, 0), 1.0);
        assert!(m.value(0, 0) <= m.threshold(0, 0));
        assert!(m.value(1, 0) > m.threshold(0, 0));
    }

    #[test]
    fn constant_column_is_single_bin() {
        let rows: Vec<Vec<f64>> = (0..5).map(|_| vec![7.0]).collect();
        let m = DMatrix::from_rows(&rows);
        assert_eq!(m.n_bins(0), 1);
        assert!((0..5).all(|r| m.bin(r, 0) == 0));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = DMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_rejected() {
        let _ = DMatrix::from_rows(&[]);
    }
}
