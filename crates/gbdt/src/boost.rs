//! Squared-error gradient boosting with shrinkage and stochastic sampling.

use crate::data::DMatrix;
use crate::tree::{Tree, TreeParams};
use lmpeel_stats::{seeded_rng, SeedDomain};
use rand::seq::SliceRandom;

/// Boosting hyperparameters — the set the paper's randomized search tunes
/// ("the number of estimators, learning rate, maximum tree depth and
/// minimum number of samples per leaf node") plus the standard stochastic
/// sampling knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtParams {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Per-tree growth constraints.
    pub tree: TreeParams,
    /// Fraction of rows sampled (without replacement) per round.
    pub subsample: f64,
    /// Fraction of features sampled per round.
    pub colsample: f64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        Self {
            n_estimators: 200,
            learning_rate: 0.1,
            tree: TreeParams::default(),
            subsample: 1.0,
            colsample: 1.0,
        }
    }
}

/// A fitted boosted ensemble.
#[derive(Debug, Clone)]
pub struct Gbdt {
    params: GbdtParams,
    base: f64,
    trees: Vec<Tree>,
}

impl Gbdt {
    /// Fit on row-major features and targets. `seed` drives the stochastic
    /// row/column sampling (deterministic per seed).
    ///
    /// # Panics
    /// Panics on empty data, length mismatch, or sampling fractions
    /// outside `(0, 1]`.
    pub fn fit(features: &[Vec<f64>], targets: &[f64], params: GbdtParams, seed: u64) -> Self {
        assert_eq!(
            features.len(),
            targets.len(),
            "features/targets length mismatch"
        );
        assert!(!features.is_empty(), "cannot fit on empty data");
        assert!(
            params.subsample > 0.0 && params.subsample <= 1.0,
            "subsample must be in (0,1]"
        );
        assert!(
            params.colsample > 0.0 && params.colsample <= 1.0,
            "colsample must be in (0,1]"
        );
        let data = DMatrix::from_rows(features);
        let n = data.n_rows();
        let n_features = data.n_features();
        let base = targets.iter().sum::<f64>() / n as f64;
        let mut pred = vec![base; n];
        let mut residual = vec![0.0; n];
        let mut trees = Vec::with_capacity(params.n_estimators);
        let mut rng = seeded_rng(seed, SeedDomain::GbdtTraining(0));
        let all_rows: Vec<usize> = (0..n).collect();
        let all_feats: Vec<usize> = (0..n_features).collect();
        let n_sub = ((n as f64 * params.subsample).round() as usize).clamp(1, n);
        let n_col = ((n_features as f64 * params.colsample).round() as usize).clamp(1, n_features);

        for _ in 0..params.n_estimators {
            for i in 0..n {
                residual[i] = targets[i] - pred[i];
            }
            let rows: Vec<usize> = if n_sub < n {
                let mut shuffled = all_rows.clone();
                let _ = shuffled.partial_shuffle(&mut rng, n_sub);
                shuffled[..n_sub].to_vec()
            } else {
                all_rows.clone()
            };
            let feats: Vec<usize> = if n_col < n_features {
                let mut shuffled = all_feats.clone();
                let _ = shuffled.partial_shuffle(&mut rng, n_col);
                let mut f = shuffled[..n_col].to_vec();
                f.sort_unstable();
                f
            } else {
                all_feats.clone()
            };
            let tree = Tree::fit(&data, &residual, &rows, &feats, params.tree);
            for (i, row) in features.iter().enumerate() {
                pred[i] += params.learning_rate * tree.predict_row(row);
            }
            trees.push(tree);
        }
        Self {
            params,
            base,
            trees,
        }
    }

    /// Predict one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.base
            + self.params.learning_rate * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }

    /// Predict a batch of rows.
    pub fn predict(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_row(r)).collect()
    }

    /// The hyperparameters used for fitting.
    pub fn params(&self) -> GbdtParams {
        self.params
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Gain-based feature importance, normalized to sum to 1 (all zeros if
    /// the ensemble never split).
    pub fn feature_importance(&self, n_features: usize) -> Vec<f64> {
        let mut acc = vec![0.0; n_features];
        for t in &self.trees {
            t.accumulate_importance(&mut acc);
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmpeel_stats::r2_score;

    fn toy_nonlinear(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = x0^2 + 3*[x1>0.5] - x0*x2, deterministic grid
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = (i % 17) as f64 / 17.0;
                let b = ((i / 17) % 13) as f64 / 13.0;
                let c = ((i / 221) % 7) as f64 / 7.0;
                vec![a, b, c]
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r[0] * r[0] + 3.0 * f64::from(r[1] > 0.5) - r[0] * r[2])
            .collect();
        (rows, y)
    }

    #[test]
    fn fits_nonlinear_function_well() {
        let (x, y) = toy_nonlinear(1500);
        let model = Gbdt::fit(&x, &y, GbdtParams::default(), 0);
        let pred = model.predict(&x);
        let r2 = r2_score(&pred, &y);
        assert!(r2 > 0.99, "training R2 {r2} too low");
    }

    #[test]
    fn generalizes_on_held_out_grid_points() {
        let (x, y) = toy_nonlinear(2000);
        let (train_x, test_x) = (&x[..1500], &x[1500..]);
        let (train_y, test_y) = (&y[..1500], &y[1500..]);
        let model = Gbdt::fit(train_x, train_y, GbdtParams::default(), 1);
        let pred = model.predict(test_x);
        let r2 = r2_score(&pred, test_y);
        assert!(r2 > 0.9, "test R2 {r2} too low");
    }

    #[test]
    fn zero_trees_predicts_the_mean() {
        let (x, y) = toy_nonlinear(100);
        let model = Gbdt::fit(
            &x,
            &y,
            GbdtParams {
                n_estimators: 0,
                ..Default::default()
            },
            0,
        );
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert_eq!(model.n_trees(), 0);
        assert!((model.predict_row(&x[0]) - mean).abs() < 1e-12);
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let (x, y) = toy_nonlinear(800);
        let fit_err = |rounds: usize| {
            let m = Gbdt::fit(
                &x,
                &y,
                GbdtParams {
                    n_estimators: rounds,
                    learning_rate: 0.1,
                    ..Default::default()
                },
                0,
            );
            let pred = m.predict(&x);
            pred.iter()
                .zip(&y)
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f64>()
        };
        let few = fit_err(5);
        let many = fit_err(100);
        assert!(
            many < few * 0.5,
            "boosting should reduce error: {few} -> {many}"
        );
    }

    #[test]
    fn stochastic_fit_is_deterministic_per_seed() {
        let (x, y) = toy_nonlinear(300);
        let params = GbdtParams {
            subsample: 0.7,
            colsample: 0.67,
            ..Default::default()
        };
        let a = Gbdt::fit(&x, &y, params, 42);
        let b = Gbdt::fit(&x, &y, params, 42);
        let c = Gbdt::fit(&x, &y, params, 43);
        assert_eq!(a.predict(&x), b.predict(&x));
        assert_ne!(a.predict(&x), c.predict(&x));
    }

    #[test]
    fn subsampled_fit_still_learns() {
        let (x, y) = toy_nonlinear(1200);
        let params = GbdtParams {
            subsample: 0.5,
            colsample: 0.67,
            ..Default::default()
        };
        let m = Gbdt::fit(&x, &y, params, 7);
        let r2 = r2_score(&m.predict(&x), &y);
        assert!(r2 > 0.95, "stochastic R2 {r2}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_rejected() {
        let _ = Gbdt::fit(&[vec![1.0]], &[1.0, 2.0], GbdtParams::default(), 0);
    }
}
