//! Histogram-split regression trees.
//!
//! Standard CART-style squared-error trees over binned features: at each
//! node, for every candidate feature, accumulate per-bin `(sum, count)`
//! histograms of the targets and pick the split maximizing the variance
//! -reduction gain `sum_L²/n_L + sum_R²/n_R − sum²/n`. Split search is
//! rayon-parallel over features.

use crate::data::DMatrix;
use rayon::prelude::*;

/// Tree growth constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0; depth 1 tree has one split).
    pub max_depth: usize,
    /// Minimum training rows in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum gain to accept a split.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_samples_leaf: 1,
            min_gain: 1e-12,
        }
    }
}

/// Tree node: either an internal binary split or a leaf prediction.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Split {
        feature: usize,
        /// `value <= threshold` goes left.
        threshold: f64,
        /// Variance-reduction gain this split achieved at fit time (the
        /// raw material of gain-based feature importance).
        gain: f64,
        left: usize,
        right: usize,
    },
    Leaf {
        value: f64,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    nodes: Vec<Node>,
}

struct BestSplit {
    feature: usize,
    bin: usize,
    gain: f64,
}

impl Tree {
    /// Fit to `targets` on the rows listed in `rows`, considering only the
    /// features in `features`.
    ///
    /// # Panics
    /// Panics if `rows` is empty or `targets` is shorter than the data.
    pub fn fit(
        data: &DMatrix,
        targets: &[f64],
        rows: &[usize],
        features: &[usize],
        params: TreeParams,
    ) -> Self {
        assert!(!rows.is_empty(), "cannot fit a tree on zero rows");
        assert!(targets.len() >= data.n_rows(), "targets shorter than data");
        assert!(!features.is_empty(), "need at least one candidate feature");
        let mut tree = Tree { nodes: Vec::new() };
        let mut rows_buf: Vec<usize> = rows.to_vec();
        tree.grow(data, targets, &mut rows_buf, features, params, 0);
        tree
    }

    /// Recursively grow; `rows` is reordered in place (partitioned).
    /// Returns the index of the created node.
    fn grow(
        &mut self,
        data: &DMatrix,
        targets: &[f64],
        rows: &mut [usize],
        features: &[usize],
        params: TreeParams,
        depth: usize,
    ) -> usize {
        let sum: f64 = rows.iter().map(|&r| targets[r]).sum();
        let n = rows.len();
        let mean = sum / n as f64;
        let make_leaf = |tree: &mut Tree| {
            tree.nodes.push(Node::Leaf { value: mean });
            tree.nodes.len() - 1
        };

        if depth >= params.max_depth || n < 2 * params.min_samples_leaf {
            return make_leaf(self);
        }

        let best = Self::find_best_split(data, targets, rows, features, params, sum);
        let Some(best) = best else {
            return make_leaf(self);
        };
        if best.gain < params.min_gain {
            return make_leaf(self);
        }

        // Partition rows around the winning bin.
        let mid = partition(rows, |&r| data.bin(r, best.feature) <= best.bin);
        debug_assert!(mid > 0 && mid < rows.len(), "degenerate partition");

        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean }); // placeholder
        let (left_rows, right_rows) = rows.split_at_mut(mid);
        let left = self.grow(data, targets, left_rows, features, params, depth + 1);
        let right = self.grow(data, targets, right_rows, features, params, depth + 1);
        self.nodes[node_idx] = Node::Split {
            feature: best.feature,
            threshold: data.threshold(best.feature, best.bin),
            gain: best.gain,
            left,
            right,
        };
        node_idx
    }

    fn find_best_split(
        data: &DMatrix,
        targets: &[f64],
        rows: &[usize],
        features: &[usize],
        params: TreeParams,
        total_sum: f64,
    ) -> Option<BestSplit> {
        let n = rows.len() as f64;
        let parent_score = total_sum * total_sum / n;
        features
            .par_iter()
            .filter_map(|&f| {
                let n_bins = data.n_bins(f);
                if n_bins < 2 {
                    return None;
                }
                let mut sums = vec![0.0f64; n_bins];
                let mut counts = vec![0usize; n_bins];
                for &r in rows {
                    let b = data.bin(r, f);
                    sums[b] += targets[r];
                    counts[b] += 1;
                }
                let total_count: usize = rows.len();
                let mut best: Option<BestSplit> = None;
                let mut left_sum = 0.0;
                let mut left_count = 0usize;
                for b in 0..n_bins - 1 {
                    left_sum += sums[b];
                    left_count += counts[b];
                    let right_count = total_count - left_count;
                    if left_count < params.min_samples_leaf
                        || right_count < params.min_samples_leaf
                        || left_count == 0
                        || right_count == 0
                    {
                        continue;
                    }
                    let right_sum = total_sum - left_sum;
                    let gain = left_sum * left_sum / left_count as f64
                        + right_sum * right_sum / right_count as f64
                        - parent_score;
                    if best.as_ref().is_none_or(|s| gain > s.gain) {
                        best = Some(BestSplit {
                            feature: f,
                            bin: b,
                            gain,
                        });
                    }
                }
                best
            })
            .max_by(|a, b| {
                a.gain
                    .partial_cmp(&b.gain)
                    .unwrap()
                    // deterministic tie-break on feature index
                    .then(b.feature.cmp(&a.feature))
            })
    }

    /// Predict one feature row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Accumulate this tree's gain-based feature importance into `acc`
    /// (one slot per feature).
    ///
    /// # Panics
    /// Panics if `acc` is shorter than the largest feature index used.
    pub fn accumulate_importance(&self, acc: &mut [f64]) {
        for n in &self.nodes {
            if let Node::Split { feature, gain, .. } = n {
                acc[*feature] += gain.max(0.0);
            }
        }
    }

    /// Maximum depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }
}

/// Stable partition in place: rows satisfying the predicate first.
/// Returns the number of satisfying rows.
fn partition<F: Fn(&usize) -> bool>(rows: &mut [usize], pred: F) -> usize {
    let mut left: Vec<usize> = Vec::with_capacity(rows.len());
    let mut right: Vec<usize> = Vec::with_capacity(rows.len());
    for &r in rows.iter() {
        if pred(&r) {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    let mid = left.len();
    rows[..mid].copy_from_slice(&left);
    rows[mid..].copy_from_slice(&right);
    mid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_all(rows: &[Vec<f64>], y: &[f64], params: TreeParams) -> Tree {
        let data = DMatrix::from_rows(rows);
        let all_rows: Vec<usize> = (0..rows.len()).collect();
        let feats: Vec<usize> = (0..rows[0].len()).collect();
        Tree::fit(&data, y, &all_rows, &feats, params)
    }

    #[test]
    fn single_split_recovers_a_step_function() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let t = fit_all(
            &rows,
            &y,
            TreeParams {
                max_depth: 1,
                ..Default::default()
            },
        );
        assert_eq!(t.depth(), 1);
        assert_eq!(t.n_leaves(), 2);
        assert!((t.predict_row(&[3.0]) - 1.0).abs() < 1e-12);
        assert!((t.predict_row(&[15.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn deep_tree_fits_training_data_exactly() {
        let rows: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..32).map(|i| ((i * 7) % 13) as f64).collect();
        let t = fit_all(
            &rows,
            &y,
            TreeParams {
                max_depth: 10,
                ..Default::default()
            },
        );
        for (r, &target) in rows.iter().zip(&y) {
            assert!((t.predict_row(r) - target).abs() < 1e-9);
        }
    }

    #[test]
    fn depth_zero_is_the_mean() {
        let rows: Vec<Vec<f64>> = (0..4).map(|i| vec![i as f64]).collect();
        let y = [1.0, 2.0, 3.0, 6.0];
        let t = fit_all(
            &rows,
            &y,
            TreeParams {
                max_depth: 0,
                ..Default::default()
            },
        );
        assert!(t.is_empty());
        assert!((t.predict_row(&[0.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let t = fit_all(
            &rows,
            &y,
            TreeParams {
                max_depth: 10,
                min_samples_leaf: 5,
                min_gain: 1e-12,
            },
        );
        // With min 5 per leaf on 10 rows, only one split is possible.
        assert!(t.n_leaves() <= 2);
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 0 is noise-free signal; feature 1 is constant.
        let rows: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = (0..16).map(|i| if i < 8 { 0.0 } else { 1.0 }).collect();
        let t = fit_all(
            &rows,
            &y,
            TreeParams {
                max_depth: 1,
                ..Default::default()
            },
        );
        match &t.nodes[0] {
            Node::Split { feature, .. } => assert_eq!(*feature, 0),
            n => panic!("expected a split, got {n:?}"),
        }
    }

    #[test]
    fn constant_targets_make_a_leaf() {
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let y = vec![2.5; 8];
        let t = fit_all(&rows, &y, TreeParams::default());
        assert!(t.is_empty(), "no gain anywhere -> single leaf");
        assert_eq!(t.predict_row(&[100.0]), 2.5);
    }

    #[test]
    fn multivariate_interaction_is_learnable() {
        // y = x0 + x1 + 2*x0*x1 over binary features: the interaction term
        // needs depth 2, and (unlike XOR) the marginals give the greedy
        // splitter a nonzero root gain.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 2) as f64, ((i / 2) % 2) as f64])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r[0] + r[1] + 2.0 * r[0] * r[1])
            .collect();
        let shallow = fit_all(
            &rows,
            &y,
            TreeParams {
                max_depth: 1,
                ..Default::default()
            },
        );
        let deep = fit_all(
            &rows,
            &y,
            TreeParams {
                max_depth: 2,
                ..Default::default()
            },
        );
        let err = |t: &Tree| {
            rows.iter()
                .zip(&y)
                .map(|(r, &t_)| (t.predict_row(r) - t_).abs())
                .sum::<f64>()
        };
        assert!(err(&deep) < 1e-9, "depth 2 captures the interaction");
        assert!(err(&shallow) > 1.0, "depth 1 cannot");
    }

    #[test]
    fn partition_is_stable_and_correct() {
        let mut rows = vec![5, 2, 8, 1, 9, 4];
        let mid = partition(&mut rows, |&r| r < 5);
        assert_eq!(mid, 3);
        assert_eq!(&rows[..3], &[2, 1, 4], "stable order preserved");
        assert_eq!(&rows[3..], &[5, 8, 9]);
    }
}
