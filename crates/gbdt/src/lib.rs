//! Gradient-boosted regression trees: the paper's XGBoost-style baseline.
//!
//! §III-D: "We consider the prediction of traditional ensemble machine
//! learning techniques, namely XGBoost, a gradient-boosted ensemble of
//! decision trees, as a reasonable baseline for success. The XGBoost
//! ensemble has tunable hyperparameters, including the number of
//! estimators, learning rate, maximum tree depth and minimum number of
//! samples per leaf node. We find the best-fitting model through a
//! randomized search with 1000 iterations."
//!
//! This crate implements that baseline from scratch: binned feature
//! matrices ([`data`]), histogram-split regression trees ([`tree`]),
//! squared-error gradient boosting with shrinkage, row subsampling and
//! column sampling ([`boost`]), and the randomized hyperparameter search
//! ([`search`]), rayon-parallel over both split candidates and search
//! iterations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boost;
pub mod data;
pub mod search;
pub mod tree;

pub use boost::{Gbdt, GbdtParams};
pub use data::DMatrix;
pub use search::{random_search, SearchResult, SearchSpace};
pub use tree::{Tree, TreeParams};
