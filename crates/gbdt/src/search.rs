//! Randomized hyperparameter search (the paper uses 1000 iterations).
//!
//! Candidates are drawn log-uniformly / uniformly from a [`SearchSpace`],
//! fitted on the training split and scored (R²) on a validation split;
//! candidate evaluation is rayon-parallel. Deterministic per seed: draws
//! are generated up front from one stream, so parallelism cannot reorder
//! them.

use crate::boost::{Gbdt, GbdtParams};
use crate::tree::TreeParams;
use lmpeel_stats::{r2_score, seeded_rng, SeedDomain};
use rand::RngExt;
use rayon::prelude::*;

/// Ranges for the randomized search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchSpace {
    /// Inclusive range of boosting rounds.
    pub n_estimators: (usize, usize),
    /// Log-uniform range of learning rates.
    pub learning_rate: (f64, f64),
    /// Inclusive range of maximum depths.
    pub max_depth: (usize, usize),
    /// Inclusive range of minimum samples per leaf.
    pub min_samples_leaf: (usize, usize),
    /// Uniform range of row subsample fractions.
    pub subsample: (f64, f64),
    /// Uniform range of feature subsample fractions.
    pub colsample: (f64, f64),
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self {
            n_estimators: (50, 600),
            learning_rate: (0.01, 0.3),
            max_depth: (3, 12),
            min_samples_leaf: (1, 16),
            subsample: (0.5, 1.0),
            colsample: (0.5, 1.0),
        }
    }
}

impl SearchSpace {
    /// Draw one candidate parameter set.
    pub fn draw<R: RngExt + ?Sized>(&self, rng: &mut R) -> GbdtParams {
        let log_uniform =
            |rng: &mut R, (lo, hi): (f64, f64)| (rng.random_range(lo.ln()..=hi.ln())).exp();
        GbdtParams {
            n_estimators: rng.random_range(self.n_estimators.0..=self.n_estimators.1),
            learning_rate: log_uniform(rng, self.learning_rate),
            tree: TreeParams {
                max_depth: rng.random_range(self.max_depth.0..=self.max_depth.1),
                min_samples_leaf: rng
                    .random_range(self.min_samples_leaf.0..=self.min_samples_leaf.1),
                min_gain: 1e-12,
            },
            subsample: rng.random_range(self.subsample.0..=self.subsample.1),
            colsample: rng.random_range(self.colsample.0..=self.colsample.1),
        }
    }
}

/// Outcome of a randomized search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best model, refitted on the full training set.
    pub model: Gbdt,
    /// Validation R² of the winning candidate.
    pub val_r2: f64,
    /// Number of candidates evaluated.
    pub iterations: usize,
}

/// Run a randomized search: draw `iterations` candidates, fit each on
/// `(train_x, train_y)`, score on `(val_x, val_y)`, refit the winner on
/// train+validation combined.
///
/// # Panics
/// Panics if any split is empty or `iterations == 0`.
pub fn random_search(
    train_x: &[Vec<f64>],
    train_y: &[f64],
    val_x: &[Vec<f64>],
    val_y: &[f64],
    space: SearchSpace,
    iterations: usize,
    seed: u64,
) -> SearchResult {
    assert!(iterations > 0, "need at least one search iteration");
    assert!(!train_x.is_empty() && !val_x.is_empty(), "empty split");
    let mut rng = seeded_rng(seed, SeedDomain::HyperSearch(0));
    let candidates: Vec<GbdtParams> = (0..iterations).map(|_| space.draw(&mut rng)).collect();

    let scored: Vec<(usize, f64)> = candidates
        .par_iter()
        .enumerate()
        .map(|(i, params)| {
            let model = Gbdt::fit(train_x, train_y, *params, seed ^ (i as u64));
            let pred = model.predict(val_x);
            (i, r2_score(&pred, val_y))
        })
        .collect();
    let &(best_idx, val_r2) = scored
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
        .expect("iterations > 0");

    // Refit the winner on all available data.
    let mut full_x: Vec<Vec<f64>> = train_x.to_vec();
    full_x.extend_from_slice(val_x);
    let mut full_y: Vec<f64> = train_y.to_vec();
    full_y.extend_from_slice(val_y);
    let model = Gbdt::fit(
        &full_x,
        &full_y,
        candidates[best_idx],
        seed ^ (best_idx as u64),
    );
    SearchResult {
        model,
        val_r2,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 23) as f64 / 23.0, ((i / 23) % 19) as f64 / 19.0])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| (6.0 * r[0]).sin() + r[1] * r[1])
            .collect();
        (rows, y)
    }

    #[test]
    fn draw_respects_ranges() {
        let space = SearchSpace::default();
        let mut rng = seeded_rng(0, SeedDomain::HyperSearch(9));
        for _ in 0..200 {
            let p = space.draw(&mut rng);
            assert!((space.n_estimators.0..=space.n_estimators.1).contains(&p.n_estimators));
            assert!(p.learning_rate >= space.learning_rate.0 * 0.999);
            assert!(p.learning_rate <= space.learning_rate.1 * 1.001);
            assert!((space.max_depth.0..=space.max_depth.1).contains(&p.tree.max_depth));
            assert!(p.subsample >= 0.5 && p.subsample <= 1.0);
            assert!(p.colsample >= 0.5 && p.colsample <= 1.0);
        }
    }

    #[test]
    fn search_beats_a_bad_default() {
        let (x, y) = toy(600);
        let (tx, vx) = (&x[..400], &x[400..]);
        let (ty, vy) = (&y[..400], &y[400..]);
        // A deliberately poor baseline: depth 1, 5 rounds.
        let bad = Gbdt::fit(
            tx,
            ty,
            GbdtParams {
                n_estimators: 5,
                tree: TreeParams {
                    max_depth: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
            0,
        );
        let bad_r2 = r2_score(&bad.predict(vx), vy);
        let result = random_search(tx, ty, vx, vy, SearchSpace::default(), 12, 0);
        assert!(
            result.val_r2 > bad_r2,
            "search ({}) should beat bad default ({bad_r2})",
            result.val_r2
        );
        assert_eq!(result.iterations, 12);
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let (x, y) = toy(300);
        let (tx, vx) = (&x[..200], &x[200..]);
        let (ty, vy) = (&y[..200], &y[200..]);
        let a = random_search(tx, ty, vx, vy, SearchSpace::default(), 6, 5);
        let b = random_search(tx, ty, vx, vy, SearchSpace::default(), 6, 5);
        assert_eq!(a.val_r2, b.val_r2);
        assert_eq!(a.model.predict(vx), b.model.predict(vx));
    }

    #[test]
    fn winner_is_refit_on_all_data() {
        let (x, y) = toy(300);
        let (tx, vx) = (&x[..200], &x[200..]);
        let (ty, vy) = (&y[..200], &y[200..]);
        let result = random_search(tx, ty, vx, vy, SearchSpace::default(), 4, 1);
        // The refit model should fit the validation set better than chance.
        let r2 = r2_score(&result.model.predict(vx), vy);
        assert!(r2 > 0.5, "refit model R2 {r2}");
    }

    #[test]
    #[should_panic(expected = "at least one search iteration")]
    fn zero_iterations_rejected() {
        let (x, y) = toy(20);
        let _ = random_search(&x, &y, &x, &y, SearchSpace::default(), 0, 0);
    }
}
