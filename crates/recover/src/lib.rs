//! Crash-safe write-ahead journaling for long experiment runs.
//!
//! The experiment grids in this workspace run hundreds of generations; a
//! crash anywhere used to lose every completed prediction. This crate is
//! the durability layer that makes runs resumable:
//!
//! * [`RunJournal`] — an append-only, length-prefixed, checksummed record
//!   log. Each [`RunJournal::commit`] is write → flush → `fsync`, so a
//!   record is either fully durable or not present at all; recovery
//!   salvages the longest checksum-valid prefix of a torn tail instead of
//!   erroring, and refuses to resume against a journal whose plan
//!   fingerprint doesn't match.
//! * [`JournalRecord`] — the codec trait a record type implements to be
//!   journaled (see [`wire`] for the byte-exact helpers).
//! * [`atomic_write`] — temp-file + `fsync` + atomic-rename publication,
//!   shared by the journal header and every `bench_out` golden emitter so
//!   a crash can never leave a truncated artifact.
//! * [`CrashAfter`] (behind the `fault-inject` feature, and in tests) — a
//!   deterministic kill-point hook that fires at an exact commit boundary,
//!   driving the kill-and-resume suites without wall clocks or signals.
//!
//! Nothing here reads a clock or OS entropy: fingerprints and checksums
//! use the process-stable FNV-1a hash ([`fnv1a64`]), never
//! `std::collections::hash_map::RandomState` (whose per-process random
//! keys would make on-disk hashes meaningless).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wire;

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Journal file format version; bump on any framing change.
pub const FORMAT_VERSION: u32 = 1;

/// Journal header: magic, format version, plan fingerprint.
const MAGIC: [u8; 4] = *b"LMPJ";
const HEADER_LEN: usize = 16;

/// Sanity bound on one record's payload during salvage: a torn or
/// bit-flipped length prefix must not make recovery attempt a huge read.
const MAX_RECORD_LEN: u32 = 1 << 28;

/// FNV-1a 64-bit hash. Stable across processes and platforms — unlike
/// `DefaultHasher`, which seeds per process and is useless for on-disk
/// fingerprints and checksums.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: a cheap, high-quality bit mixer for deriving
/// deterministic jitter from a hash (no OS entropy involved).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Write `bytes` to `path` atomically: write a hidden temp file in the
/// same directory, `fsync` it, then `rename` over the destination. Readers
/// observe either the old contents or the new ones — never a truncated
/// mix — and a crash mid-write leaves the destination untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "atomic_write needs a file name",
        )
    })?;
    let tmp = dir.join(format!(".{}.tmp", name.to_string_lossy()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Best-effort directory sync so the rename itself survives a power
    // cut; failure here cannot lose data, only delay its visibility.
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// A type that can be journaled: it names a stable, ordered key and
/// round-trips through a byte-exact codec ([`wire`] has the helpers).
///
/// `decode(encode(r)) == Some(r)` must hold bit-for-bit — journaled
/// records stand in for recomputed ones on resume, so any lossy field
/// breaks the byte-identity guarantee. `decode` must return `None` (never
/// panic) on malformed input, and should reject payloads with trailing
/// bytes ([`wire::Reader::is_done`]): salvage classifies a record as torn
/// by that `None`.
pub trait JournalRecord: Clone {
    /// Uniquely identifies the unit of work the record is the result of.
    type Key: Ord + Clone;

    /// The record's key.
    fn key(&self) -> Self::Key;

    /// Append the canonical encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Parse an encoding produced by [`JournalRecord::encode`]; `None` on
    /// any malformation.
    fn decode(bytes: &[u8]) -> Option<Self>
    where
        Self: Sized;
}

/// Why a journal could not be opened or appended to.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The journal on disk belongs to a different plan: its header
    /// fingerprint does not match the one this run computed. Resuming
    /// would silently mix results from incompatible runs, so the journal
    /// is refused; delete it (or pass a different path) to start over.
    FingerprintMismatch {
        /// Fingerprint of the plan being run.
        expected: u64,
        /// Fingerprint recorded in the journal header.
        found: u64,
    },
    /// The deterministic kill-point hook fired ([`CrashAfter`] with
    /// [`CrashMode::Error`]): the commit did not happen, simulating a
    /// process killed at this exact boundary.
    InjectedCrash,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O failed: {e}"),
            JournalError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal belongs to a different plan (fingerprint {found:#018x}, this run is {expected:#018x}); delete it or pass a different --journal path"
            ),
            JournalError::InjectedCrash => {
                write!(f, "injected crash: kill-point hook fired at a commit boundary")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// What [`RunJournal::open`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Records salvaged from the journal (the committed prefix).
    pub records: usize,
    /// Bytes of torn/corrupt tail discarded past the last valid record.
    pub dropped_bytes: u64,
    /// True when the header itself was unreadable (file shorter than a
    /// header, bad magic, or unknown format version) and the journal was
    /// restarted empty. A complete header with a *wrong fingerprint* is
    /// never reset — that's [`JournalError::FingerprintMismatch`].
    pub reset: bool,
}

/// Deterministic kill-point: crash the journal at an exact commit
/// boundary. `commits` more commits are allowed to land durably; the next
/// one fires `mode` *before* writing anything, exactly as if the process
/// had been killed between commits.
#[cfg(any(test, feature = "fault-inject"))]
#[derive(Debug, Clone, Copy)]
pub struct CrashAfter {
    /// Commits that still land before the crash fires.
    pub commits: u32,
    /// What firing does.
    pub mode: CrashMode,
}

/// How an armed [`CrashAfter`] kills the run.
#[cfg(any(test, feature = "fault-inject"))]
#[derive(Debug, Clone, Copy)]
pub enum CrashMode {
    /// Return [`JournalError::InjectedCrash`] from `commit` (and from
    /// every later commit): the in-process simulation used by the
    /// kill-and-resume proptests.
    Error,
    /// `std::process::exit` with this code: the real-kill variant the CI
    /// smoke test drives through `LMPEEL_CRASH_AFTER`.
    Exit(i32),
}

/// An append-only, checksummed, length-prefixed log of completed records,
/// keyed by [`JournalRecord::Key`].
///
/// Layout: a 16-byte header (`LMPJ` magic, format version, plan
/// fingerprint — published atomically via [`atomic_write`]) followed by
/// frames of `len: u32 | fnv1a64(payload): u64 | payload`. A commit is
/// durable once `commit` returns: the frame is written, flushed and
/// `fsync`ed before the call completes. Recovery walks frames from the
/// front and stops at the first length/checksum/decode failure,
/// truncating the file there — so a crash mid-write costs at most the
/// record being written, never the journal.
pub struct RunJournal<R: JournalRecord> {
    path: PathBuf,
    file: File,
    records: BTreeMap<R::Key, R>,
    #[cfg(any(test, feature = "fault-inject"))]
    crash: Option<CrashAfter>,
}

fn header_bytes(fingerprint: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN);
    h.extend_from_slice(&MAGIC);
    wire::put_u32(&mut h, FORMAT_VERSION);
    wire::put_u64(&mut h, fingerprint);
    h
}

impl<R: JournalRecord> RunJournal<R> {
    /// Open the journal at `path` for the plan identified by
    /// `fingerprint`, creating it if absent, salvaging the longest valid
    /// record prefix if the tail is torn, and refusing a journal whose
    /// header names a different fingerprint.
    pub fn open(path: impl AsRef<Path>, fingerprint: u64) -> Result<(Self, Recovery), JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut recovery = Recovery::default();
        let mut records = BTreeMap::new();

        let existing = match std::fs::read(&path) {
            Ok(data) => Some(data),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };

        let usable_header = existing.as_ref().is_some_and(|data| {
            data.len() >= HEADER_LEN
                && data[..4] == MAGIC
                && wire::Reader::new(&data[4..8]).u32() == Some(FORMAT_VERSION)
        });

        if let (Some(data), true) = (&existing, usable_header) {
            let found = wire::Reader::new(&data[8..HEADER_LEN])
                .u64()
                .unwrap_or_default();
            if found != fingerprint {
                return Err(JournalError::FingerprintMismatch {
                    expected: fingerprint,
                    found,
                });
            }
            // Salvage: longest prefix of frames whose length, checksum and
            // decode all hold.
            let mut pos = HEADER_LEN;
            while let Some(len) = data.get(pos..pos + 4).and_then(|b| wire::Reader::new(b).u32()) {
                if len > MAX_RECORD_LEN {
                    break;
                }
                let len = len as usize;
                let Some(checksum) = data
                    .get(pos + 4..pos + 12)
                    .and_then(|b| wire::Reader::new(b).u64())
                else {
                    break;
                };
                let Some(payload) = data.get(pos + 12..pos + 12 + len) else {
                    break;
                };
                if fnv1a64(payload) != checksum {
                    break;
                }
                let Some(record) = R::decode(payload) else {
                    break;
                };
                records.insert(record.key(), record);
                recovery.records += 1;
                pos += 12 + len;
            }
            if pos < data.len() {
                recovery.dropped_bytes = (data.len() - pos) as u64;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(pos as u64)?;
                f.sync_all()?;
            }
        } else {
            // Missing file, or a header too torn to even identify the
            // journal: (re)start empty. A torn header cannot prove the
            // fingerprint matched, so nothing behind it is trustworthy.
            if let Some(data) = &existing {
                recovery.reset = true;
                recovery.dropped_bytes = data.len() as u64;
            }
            atomic_write(&path, &header_bytes(fingerprint))?;
        }

        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((
            Self {
                path,
                file,
                records,
                #[cfg(any(test, feature = "fault-inject"))]
                crash: None,
            },
            recovery,
        ))
    }

    /// The journal's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of committed records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records have been committed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether a record with this key has been committed.
    pub fn contains(&self, key: &R::Key) -> bool {
        self.records.contains_key(key)
    }

    /// The committed record for `key`, if any.
    pub fn get(&self, key: &R::Key) -> Option<&R> {
        self.records.get(key)
    }

    /// Durably append one record: encode, frame, write, flush, `fsync`.
    /// When `commit` returns `Ok`, the record survives any subsequent
    /// crash; when it errors, the journal on disk still ends at the
    /// previous commit boundary.
    pub fn commit(&mut self, record: &R) -> Result<(), JournalError> {
        #[cfg(any(test, feature = "fault-inject"))]
        if let Some(crash) = &mut self.crash {
            if crash.commits == 0 {
                match crash.mode {
                    CrashMode::Error => return Err(JournalError::InjectedCrash),
                    CrashMode::Exit(code) => std::process::exit(code),
                }
            }
            crash.commits -= 1;
        }
        let mut payload = Vec::new();
        record.encode(&mut payload);
        let mut frame = Vec::with_capacity(12 + payload.len());
        wire::put_u32(&mut frame, payload.len() as u32);
        wire::put_u64(&mut frame, fnv1a64(&payload));
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.records.insert(record.key(), record.clone());
        Ok(())
    }

    /// Arm the deterministic kill-point hook: the next `crash.commits`
    /// commits land, then the one after fires `crash.mode` before writing.
    #[cfg(any(test, feature = "fault-inject"))]
    pub fn crash_after(&mut self, crash: CrashAfter) {
        self.crash = Some(crash);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Tiny record for journal-mechanics tests.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct TestRec {
        id: u64,
        data: Vec<u8>,
    }

    impl JournalRecord for TestRec {
        type Key = u64;
        fn key(&self) -> u64 {
            self.id
        }
        fn encode(&self, buf: &mut Vec<u8>) {
            wire::put_u64(buf, self.id);
            wire::put_usize(buf, self.data.len());
            buf.extend_from_slice(&self.data);
        }
        fn decode(bytes: &[u8]) -> Option<Self> {
            let mut r = wire::Reader::new(bytes);
            let id = r.u64()?;
            let len = r.usize()?;
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(r.u8()?);
            }
            r.is_done().then_some(TestRec { id, data })
        }
    }

    fn rec(id: u64) -> TestRec {
        TestRec {
            id,
            // Varied, id-derived payloads so checksums differ per record.
            data: (0..(id % 7) as u8 + 1).map(|i| i.wrapping_mul(31) ^ id as u8).collect(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("lmpeel-recover-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.journal", std::process::id()))
    }

    #[test]
    fn commit_then_reopen_round_trips() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut j, rc) = RunJournal::<TestRec>::open(&path, 42).unwrap();
        assert_eq!(rc, Recovery::default());
        for id in 0..5 {
            j.commit(&rec(id)).unwrap();
        }
        drop(j);
        let (j, rc) = RunJournal::<TestRec>::open(&path, 42).unwrap();
        assert_eq!(rc.records, 5);
        assert_eq!(rc.dropped_bytes, 0);
        assert!(!rc.reset);
        for id in 0..5 {
            assert_eq!(j.get(&id), Some(&rec(id)));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mismatched_fingerprint_is_refused() {
        let path = tmp("fingerprint");
        let _ = std::fs::remove_file(&path);
        let (mut j, _) = RunJournal::<TestRec>::open(&path, 1).unwrap();
        j.commit(&rec(0)).unwrap();
        drop(j);
        let err = match RunJournal::<TestRec>::open(&path, 2) {
            Ok(_) => panic!("open must refuse a mismatched fingerprint"),
            Err(e) => e,
        };
        match err {
            JournalError::FingerprintMismatch { expected, found } => {
                assert_eq!((expected, found), (2, 1));
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_hook_fires_at_the_exact_boundary() {
        let path = tmp("crash");
        let _ = std::fs::remove_file(&path);
        let (mut j, _) = RunJournal::<TestRec>::open(&path, 7).unwrap();
        j.crash_after(CrashAfter {
            commits: 2,
            mode: CrashMode::Error,
        });
        j.commit(&rec(0)).unwrap();
        j.commit(&rec(1)).unwrap();
        assert!(matches!(
            j.commit(&rec(2)),
            Err(JournalError::InjectedCrash)
        ));
        // A crashed journal stays crashed.
        assert!(matches!(
            j.commit(&rec(3)),
            Err(JournalError::InjectedCrash)
        ));
        drop(j);
        let (j, rc) = RunJournal::<TestRec>::open(&path, 7).unwrap();
        assert_eq!(rc.records, 2);
        assert!(j.contains(&0) && j.contains(&1) && !j.contains(&2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_replaces_contents_wholesale() {
        let path = tmp("atomic");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        // No temp file left behind.
        let name = format!(".{}.tmp", path.file_name().unwrap().to_string_lossy());
        assert!(!path.with_file_name(name).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_header_resets_the_journal() {
        let path = tmp("tornheader");
        let _ = std::fs::remove_file(&path);
        for cut in [0usize, 3, 7, 15] {
            let (mut j, _) = RunJournal::<TestRec>::open(&path, 9).unwrap();
            j.commit(&rec(1)).unwrap();
            drop(j);
            let data = std::fs::read(&path).unwrap();
            std::fs::write(&path, &data[..cut]).unwrap();
            let (j, rc) = RunJournal::<TestRec>::open(&path, 9).unwrap();
            assert!(rc.reset, "cut at {cut} must reset");
            assert_eq!(rc.records, 0);
            assert_eq!(rc.dropped_bytes, cut as u64);
            assert!(j.is_empty());
            std::fs::remove_file(&path).unwrap();
        }
    }

    /// Byte layout of a committed journal, for computing the expected
    /// salvage count at an arbitrary truncation offset.
    fn frame_ends(data: &[u8]) -> Vec<usize> {
        let mut ends = Vec::new();
        let mut pos = HEADER_LEN;
        while pos + 12 <= data.len() {
            let len = wire::Reader::new(&data[pos..pos + 4]).u32().unwrap() as usize;
            pos += 12 + len;
            ends.push(pos);
        }
        ends
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        // Truncating a valid journal at *every* byte offset salvages
        // exactly the frames wholly before the cut, and the journal is
        // immediately appendable again.
        #[test]
        fn truncation_salvages_the_longest_valid_prefix(n_records in 1usize..6, case in 0u64..1000) {
            let path = tmp(&format!("trunc-{case}-{n_records}"));
            let _ = std::fs::remove_file(&path);
            let (mut j, _) = RunJournal::<TestRec>::open(&path, case).unwrap();
            for id in 0..n_records as u64 {
                j.commit(&rec(id * 13 + case)).unwrap();
            }
            drop(j);
            let data = std::fs::read(&path).unwrap();
            let ends = frame_ends(&data);
            for cut in HEADER_LEN..data.len() {
                std::fs::write(&path, &data[..cut]).unwrap();
                let (mut j, rc) = RunJournal::<TestRec>::open(&path, case).unwrap();
                let expected = ends.iter().filter(|&&e| e <= cut).count();
                prop_assert_eq!(rc.records, expected, "cut at {}", cut);
                prop_assert!(!rc.reset);
                // The salvaged journal accepts new commits at the boundary.
                j.commit(&rec(10_000 + cut as u64)).unwrap();
                drop(j);
                let (j, rc2) = RunJournal::<TestRec>::open(&path, case).unwrap();
                prop_assert_eq!(rc2.records, expected + 1);
                prop_assert_eq!(rc2.dropped_bytes, 0);
                prop_assert!(j.contains(&(10_000 + cut as u64)));
            }
            std::fs::remove_file(&path).unwrap();
        }

        // A single bit flip anywhere in the last frame costs exactly that
        // frame: the checksum (or framing) fails and salvage keeps the
        // prefix before it.
        #[test]
        fn bit_flips_in_the_last_frame_drop_only_that_frame(
            n_records in 2usize..6,
            flip_bit in 0usize..8,
            case in 0u64..1000,
        ) {
            let path = tmp(&format!("flip-{case}-{n_records}-{flip_bit}"));
            let _ = std::fs::remove_file(&path);
            let (mut j, _) = RunJournal::<TestRec>::open(&path, case).unwrap();
            for id in 0..n_records as u64 {
                j.commit(&rec(id * 17 + case)).unwrap();
            }
            drop(j);
            let pristine = std::fs::read(&path).unwrap();
            let ends = frame_ends(&pristine);
            let last_start = ends[ends.len() - 2];
            for byte in last_start..pristine.len() {
                let mut data = pristine.clone();
                data[byte] ^= 1 << flip_bit;
                std::fs::write(&path, &data).unwrap();
                let (_, rc) = RunJournal::<TestRec>::open(&path, case).unwrap();
                prop_assert_eq!(
                    rc.records, n_records - 1,
                    "flip at byte {} bit {}", byte, flip_bit
                );
                prop_assert!(rc.dropped_bytes > 0);
            }
            std::fs::remove_file(&path).unwrap();
        }
    }
}
