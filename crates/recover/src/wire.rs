//! Minimal little-endian binary codec helpers for journal records.
//!
//! Journal payloads must round-trip *byte-exactly*: a record decoded from
//! the journal stands in for the record a resumed run would otherwise
//! recompute, so any lossy step (notably float formatting) would break the
//! byte-identity guarantee of resumable runs. Floats therefore travel as
//! their IEEE-754 bit patterns via `to_bits`/`from_bits` — NaN payloads and
//! signed zeros included.
//!
//! Writers push through the `put_*` functions; readers pull through a
//! bounds-checked [`Reader`] that returns `None` instead of panicking on a
//! short or malformed buffer, which is exactly what the journal's salvage
//! pass needs to classify a torn tail.

/// Append one byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `usize` as a `u64`.
pub fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

/// Append an `f32` as its exact bit pattern.
pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
    put_u32(buf, v.to_bits());
}

/// Append an `f64` as its exact bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_usize(buf, s.len());
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked cursor over an encoded payload. Every accessor returns
/// `None` once the buffer runs short, so decoders degrade to "record
/// malformed" instead of panicking mid-salvage.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| {
            u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
        })
    }

    /// Read a `u64` that must fit a `usize`.
    pub fn usize(&mut self) -> Option<usize> {
        self.u64().and_then(|v| usize::try_from(v).ok())
    }

    /// Read an `f32` from its bit pattern.
    pub fn f32(&mut self) -> Option<f32> {
        self.u32().map(f32::from_bits)
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// True once every byte has been consumed. Decoders should check this
    /// last: trailing garbage means the payload is not the record it
    /// claims to be.
    pub fn is_done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_exactly() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 3);
        put_f32(&mut buf, f32::NAN);
        put_f64(&mut buf, -0.0);
        put_str(&mut buf, "Performance: 0.0021");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xdead_beef));
        assert_eq!(r.u64(), Some(u64::MAX - 3));
        assert_eq!(r.f32().map(f32::to_bits), Some(f32::NAN.to_bits()));
        assert_eq!(r.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.str().as_deref(), Some("Performance: 0.0021"));
        assert!(r.is_done());
    }

    #[test]
    fn short_buffers_yield_none_not_panics() {
        let mut buf = Vec::new();
        put_str(&mut buf, "abc");
        // Truncate inside the string body.
        let mut r = Reader::new(&buf[..buf.len() - 1]);
        assert_eq!(r.str(), None);
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u32(), None);
        assert_eq!(r.u64(), None);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        assert_eq!(Reader::new(&buf).str(), None);
    }
}
